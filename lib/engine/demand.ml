module Ast = Syntax.Ast
module Ir = Semantics.Ir
module Store = Oodb.Store
module S = Set.Make (String)

type fallback = Negation | Inclusion | Hilog | Unsafe

let fallback_to_string = function
  | Negation -> "negation"
  | Inclusion -> "set-inclusion"
  | Hilog -> "variable-method (hilog)"
  | Unsafe -> "untransformable rule"

type t = {
  rules : Rule.t list;
  strat : Stratify.t;
  n_seeds : int;
  n_magic : int;
  n_guarded : int;
  n_unguarded : int;
  n_dropped : int;
  listing : string list;
}

(* ------------------------------------------------------------------ *)
(* Naming. The [$] character cannot appear in a lexed identifier, so the
   demand object and magic method names can never collide with user
   vocabulary; the same goes for the [#] in generated variables. *)

let demand_obj = Ast.Name "$demand"

let magic_prefix = "magic$"

let is_magic_name s =
  String.length s > String.length magic_prefix
  && String.sub s 0 (String.length magic_prefix) = magic_prefix

let magic_name store rel =
  let u = Store.universe store in
  match (rel : Ir.rel) with
  | Ir.R_scalar m -> magic_prefix ^ "sc$" ^ Oodb.Universe.to_string u m
  | Ir.R_set m -> magic_prefix ^ "set$" ^ Oodb.Universe.to_string u m
  | Ir.R_isa | Ir.R_isa_c _ | Ir.R_any -> invalid_arg "Demand.magic_name"

(* ------------------------------------------------------------------ *)
(* Reference analysis *)

let rec ground_simple store (r : Ast.reference) =
  match r with
  | Ast.Name n -> Some (Store.name store n)
  | Ast.Int_lit n -> Some (Store.int store n)
  | Ast.Str_lit s -> Some (Store.str store s)
  | Ast.Paren r -> ground_simple store r
  | Ast.Var _ | Ast.Path _ | Ast.Regex _ | Ast.Filter _ | Ast.Isa _ -> None

let is_self meth args =
  match (meth : Ast.reference) with
  | Ast.Name "self" -> args = []
  | _ -> false

(* The relation a method application touches; [None] for the built-in
   [self]. A non-ground method position is [R_any] (the gate rejects the
   program before any transform sees it). *)
let app_rel store ~set meth args =
  if is_self meth args then None
  else
    match ground_simple store meth with
    | Some m -> Some (if set then Ir.R_set m else Ir.R_scalar m)
    | None -> Some Ir.R_any

(* Every method application in a reference, pre-order, with its receiver
   sub-reference; isa atoms reported separately. *)
let rec walk store ~f (r : Ast.reference) =
  match r with
  | Ast.Name _ | Ast.Int_lit _ | Ast.Str_lit _ | Ast.Var _ -> ()
  | Ast.Paren r -> walk store ~f r
  | Ast.Isa { recv; cls } ->
    f `Isa;
    walk store ~f recv;
    walk store ~f cls
  | Ast.Path { p_recv; p_sep; p_meth; p_args } ->
    (match app_rel store ~set:(p_sep = Ast.Dotdot) p_meth p_args with
    | Some rel -> f (`App (rel, p_recv))
    | None -> ());
    walk store ~f p_recv;
    List.iter (walk store ~f) p_args
  | Ast.Regex { x_recv; x_re } ->
    (* The automaton walks intermediate objects no syntactic receiver
       names, so each label relation is reported with an unboundable
       receiver: the demand analysis assigns it level F and the demanded
       submodel materialises the whole relation — sound over-demand, and
       the product BFS then runs correctly over the demanded store. *)
    let rec labels (re : Ast.regex) =
      match re with
      | Ast.Rlit { l_sep; l_meth; l_args } -> (
        match app_rel store ~set:(l_sep = Ast.Dotdot) l_meth l_args with
        | Some rel -> f (`App (rel, Ast.Var "_"))
        | None -> ())
      | Ast.Rseq rs | Ast.Ralt rs -> List.iter labels rs
      | Ast.Rstar r | Ast.Rplus r | Ast.Ropt r -> labels r
    in
    labels x_re;
    walk store ~f x_recv
  | Ast.Filter { f_recv; f_meth; f_args; f_rhs } ->
    (match f_rhs with
    | Ast.Rsig_scalar _ | Ast.Rsig_set _ -> ()
    | Ast.Rscalar _ | Ast.Rset_ref _ | Ast.Rset_enum _ ->
      let set =
        match f_rhs with Ast.Rscalar _ -> false | _ -> true
      in
      (match app_rel store ~set f_meth f_args with
      | Some rel -> f (`App (rel, f_recv))
      | None -> ());
      walk store ~f f_recv;
      List.iter (walk store ~f) f_args;
      (match f_rhs with
      | Ast.Rscalar rhs | Ast.Rset_ref rhs -> walk store ~f rhs
      | Ast.Rset_enum ms -> List.iter (walk store ~f) ms
      | Ast.Rsig_scalar _ | Ast.Rsig_set _ -> ()))

let has_anon r =
  Ast.fold_reference (fun acc s -> acc || s = Ast.Var "_") false r

(* Can this receiver be evaluated to a known set of objects once [bound]
   is bound? Anonymous variables are fresh existentials — never bound. *)
let boundable bound recv =
  (not (has_anon recv))
  && S.subset (S.of_list (Ast.vars_of_reference recv)) bound

(* ------------------------------------------------------------------ *)
(* Fallback gate *)

let ref_has_inclusion r =
  Ast.fold_reference
    (fun acc sub ->
      acc
      ||
      match sub with
      | Ast.Filter { f_rhs = Ast.Rset_ref _; _ } -> true
      | _ -> false)
    false r

let body_fallback lits =
  List.fold_left
    (fun acc lit ->
      match acc with
      | Some _ -> acc
      | None -> (
        match (lit : Ast.literal) with
        | Ast.Neg _ -> Some Negation
        | Ast.Pos r -> if ref_has_inclusion r then Some Inclusion else None))
    None lits

let is_any r = Ir.equal_rel (Ir.norm_rel r) Ir.R_any

let gate query_lits goals relevant =
  match body_fallback query_lits with
  | Some fb -> Some fb
  | None ->
    if List.exists is_any goals then Some Hilog
    else
      List.fold_left
        (fun acc (r : Rule.t) ->
          match acc with
          | Some _ -> acc
          | None -> (
            match body_fallback r.source.body with
            | Some fb -> Some fb
            | None ->
              if r.reads_any || List.exists is_any r.defines then Some Hilog
              else None))
        None relevant

(* ------------------------------------------------------------------ *)
(* Guardability: a rule we can restrict with a magic guard. It must
   define exactly one relation, through a flat filter head — simple
   receiver, ground method, simple args and simple right-hand-side terms —
   so that prefixing the guard cannot change what the head writes and the
   guard variable is exactly the head receiver. *)

let guard_info store (r : Rule.t) =
  match (r.defines, r.source.head) with
  | [ d ], Ast.Filter { f_recv; f_meth; f_args; f_rhs }
    when Ast.is_simple f_recv
         && (not (has_anon f_recv))
         && List.for_all Ast.is_simple f_args
         && not (is_self f_meth f_args) ->
    let check ~set rhs_ok =
      if not rhs_ok then None
      else
        match app_rel store ~set f_meth f_args with
        | Some rel when (not (is_any rel)) && Ir.equal_rel rel d ->
          Some (rel, f_recv)
        | _ -> None
    in
    (match f_rhs with
    | Ast.Rscalar rhs -> check ~set:false (Ast.is_simple rhs)
    | Ast.Rset_enum ms -> check ~set:true (List.for_all Ast.is_simple ms)
    | Ast.Rset_ref _ | Ast.Rsig_scalar _ | Ast.Rsig_set _ -> None)
  | _ -> None

let guard_lit store rel recv =
  Ast.Pos
    (Ast.Filter
       {
         f_recv = demand_obj;
         f_meth = Ast.Name (magic_name store rel);
         f_args = [];
         f_rhs = Ast.Rset_enum [ recv ];
       })

(* ------------------------------------------------------------------ *)
(* Demand analysis. Levels form the lattice none < B < F per normalised
   relation: B (bound receiver) means every occurrence demand reaches has
   an evaluable receiver; one free occurrence anywhere upgrades to F.
   Class membership is conservatively F — isa feeds the hierarchy closure
   and is cheap to materialise in full. *)

type level = B | F

let lub a b = match (a, b) with F, _ | _, F -> F | B, B -> B

let compute_levels store proper query_lits =
  let levels : (Ir.rel, level) Hashtbl.t = Hashtbl.create 32 in
  let definers : (Ir.rel, Rule.t list) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (r : Rule.t) ->
      List.iter
        (fun d ->
          let d = Ir.norm_rel d in
          let cur = Option.value ~default:[] (Hashtbl.find_opt definers d) in
          if not (List.memq r cur) then Hashtbl.replace definers d (r :: cur))
        r.defines)
    proper;
  let queue = Queue.create () in
  let demand rel lvl =
    let rel = Ir.norm_rel rel in
    match rel with
    | Ir.R_any -> ()
    | _ ->
      let lvl = match rel with Ir.R_isa -> F | _ -> lvl in
      let cur = Hashtbl.find_opt levels rel in
      let nu = match cur with None -> lvl | Some c -> lub c lvl in
      if cur <> Some nu then begin
        Hashtbl.replace levels rel nu;
        Queue.push (rel, nu) queue
      end
  in
  let demand_ref bound r =
    walk store r ~f:(function
      | `Isa -> demand Ir.R_isa F
      | `App (rel, recv) -> demand rel (if boundable bound recv then B else F))
  in
  let demand_body init_bound lits =
    ignore
      (List.fold_left
         (fun bound lit ->
           (match (lit : Ast.literal) with
           | Ast.Pos r -> demand_ref bound r
           | Ast.Neg r ->
             (* unreachable behind the gate; conservative if it ever runs *)
             demand_ref S.empty r);
           S.union bound (S.of_list (Ast.vars_of_literal lit)))
         init_bound lits)
  in
  (* Head components below the outermost application are reads (path
     prefixes resolve before skolemising, set-valued right-hand sides
     evaluate): demand them fully. The outermost application itself is the
     define — not demanded by occurring in its own head. *)
  let rec demand_head (r : Ast.reference) =
    match r with
    | Ast.Name _ | Ast.Int_lit _ | Ast.Str_lit _ | Ast.Var _ -> ()
    | Ast.Paren r -> demand_head r
    | Ast.Isa { recv; cls } ->
      demand_ref S.empty recv;
      demand_ref S.empty cls
    | Ast.Path { p_recv; p_args; _ } ->
      demand_ref S.empty p_recv;
      List.iter (demand_ref S.empty) p_args
    (* regex heads are rejected by Wellformed (PL019); conservative if
       ever reached *)
    | Ast.Regex _ -> demand_ref S.empty r
    | Ast.Filter { f_recv; f_args; f_rhs; _ } ->
      demand_ref S.empty f_recv;
      List.iter (demand_ref S.empty) f_args;
      (match f_rhs with
      | Ast.Rscalar rhs | Ast.Rset_ref rhs -> demand_ref S.empty rhs
      | Ast.Rset_enum ms -> List.iter (demand_ref S.empty) ms
      | Ast.Rsig_scalar _ | Ast.Rsig_set _ -> ())
  in
  (* the query seeds the analysis as a pseudo-body with nothing bound *)
  demand_body S.empty query_lits;
  let processed : (int * bool, unit) Hashtbl.t = Hashtbl.create 32 in
  let process (r : Rule.t) lvl =
    let guard = if lvl = B then guard_info store r else None in
    let guarded = guard <> None in
    let key = (r.uid, guarded) in
    if not (Hashtbl.mem processed key) then begin
      Hashtbl.add processed key ();
      let init =
        match guard with
        | Some (_, recv) -> S.of_list (Ast.vars_of_reference recv)
        | None -> S.empty
      in
      demand_body init r.source.body;
      demand_head r.source.head
    end
  in
  let rec drain () =
    match Queue.take_opt queue with
    | None -> ()
    | Some (rel, lvl) ->
      List.iter
        (fun r -> process r lvl)
        (Option.value ~default:[] (Hashtbl.find_opt definers rel));
      drain ()
  in
  drain ();
  levels

(* ------------------------------------------------------------------ *)
(* Emission. Forms first (guarded / unguarded / dropped), then one pass
   over the query and every emitted body producing magic rules: a
   bound-receiver application of a B-level relation that some guarded
   rule is keyed on yields

     $demand[magic_m ->> {recv}]  <-  <body prefix binding recv>.

   (plus the guard, for guarded contexts). A receiver that is itself a
   path gets a fresh variable extracted with the built-in [self], which
   evaluates without skolemising. An empty prefix with a constant
   receiver degenerates to a magic seed fact. *)

let emit store proper query_lits levels =
  let level rel = Hashtbl.find_opt levels (Ir.norm_rel rel) in
  let forms =
    List.map
      (fun (r : Rule.t) ->
        if not (List.exists (fun d -> level d <> None) r.defines) then
          (r, `Dropped)
        else
          match guard_info store r with
          | Some (d, recv) when level d = Some B -> (r, `Guarded (d, recv))
          | Some _ | None -> (r, `Unguarded))
      proper
  in
  let guarded_rels =
    List.filter_map
      (function
        | _, `Guarded (d, _) -> Some (Ir.norm_rel d)
        | _ -> None)
      forms
  in
  let needs_magic rel =
    List.exists (Ir.equal_rel (Ir.norm_rel rel)) guarded_rels
  in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let seeds = ref [] in
  let magic = ref [] in
  let fresh = ref 0 in
  (* [origin]: the user-written rule whose body demanded this magic rule
     (None when the query itself did); diagnostics on the synthesized rule
     anchor to it. *)
  let add_magic origin (rule : Ast.rule) =
    let key = Format.asprintf "%a" Syntax.Pretty.pp_rule rule in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      if rule.body = [] then seeds := (rule, origin) :: !seeds
      else magic := (rule, origin) :: !magic
    end
  in
  let emit_for_app origin context rel recv =
    let member, binding =
      match recv with
      | Ast.Var _ -> (recv, [])
      | r when ground_simple store r <> None -> (recv, [])
      | _ ->
        incr fresh;
        let v = Printf.sprintf "Seed#%d" !fresh in
        ( Ast.Var v,
          [
            Ast.Pos
              (Ast.Filter
                 {
                   f_recv = recv;
                   f_meth = Ast.Name "self";
                   f_args = [];
                   f_rhs = Ast.Rscalar (Ast.Var v);
                 });
          ] )
    in
    let head =
      Ast.Filter
        {
          f_recv = demand_obj;
          f_meth = Ast.Name (magic_name store rel);
          f_args = [];
          f_rhs = Ast.Rset_enum [ member ];
        }
    in
    add_magic origin { Ast.head; body = context @ binding }
  in
  let emit_body origin context_init bound_init lits =
    ignore
      (List.fold_left
         (fun (ctx, bound) lit ->
           (match (lit : Ast.literal) with
           | Ast.Pos r ->
             walk store r ~f:(function
               | `Isa -> ()
               | `App (rel, recv) ->
                 if
                   level rel = Some B && boundable bound recv
                   && needs_magic rel
                 then emit_for_app origin (List.rev ctx) rel recv)
           | Ast.Neg _ -> ());
           (lit :: ctx, S.union bound (S.of_list (Ast.vars_of_literal lit))))
         (context_init, bound_init) lits)
  in
  (* the query's own bound applications seed the demand sets *)
  emit_body None [] S.empty query_lits;
  let guarded_asts = ref [] in
  let unguarded = ref [] in
  let n_dropped = ref 0 in
  List.iter
    (fun ((r : Rule.t), form) ->
      match form with
      | `Dropped -> incr n_dropped
      | `Guarded (d, recv) ->
        let guard = guard_lit store d recv in
        guarded_asts :=
          ( { Ast.head = r.source.head; body = guard :: r.source.body },
            recv,
            r )
          :: !guarded_asts;
        emit_body (Some r) [ guard ]
          (S.of_list (Ast.vars_of_reference recv))
          r.source.body
      | `Unguarded ->
        unguarded := r :: !unguarded;
        emit_body (Some r) [] S.empty r.source.body)
    forms;
  let seeds = List.rev !seeds in
  let magic = List.rev !magic in
  let guarded = List.rev !guarded_asts in
  let unguarded = List.rev !unguarded in
  (seeds, magic, guarded, unguarded, !n_dropped)

(* ------------------------------------------------------------------ *)

let count_live vec =
  let n = ref 0 in
  Oodb.Vec.iter (fun e -> if Store.live e then incr n) vec;
  !n

let magic_fact_total store =
  let u = Store.universe store in
  List.fold_left
    (fun acc m ->
      match Oodb.Universe.descriptor u m with
      | Oodb.Universe.Name s when is_magic_name s ->
        acc + count_live (Store.set_bucket store m)
      | _ -> acc)
    0 (Store.set_meths store)

let listing_of store levels ~seeds ~magic ~guarded ~unguarded ~n_dropped
    compiled_guarded =
  let u = Store.universe store in
  let pp_rule ru = Format.asprintf "%a" Syntax.Pretty.pp_rule ru in
  let adorned =
    Hashtbl.fold
      (fun rel lvl acc ->
        Format.asprintf "%%   %a : %s" (Ir.pp_rel u) rel
          (match lvl with B -> "bound-receiver" | F -> "free")
        :: acc)
      levels []
    |> List.sort compare
  in
  let section title rules =
    Printf.sprintf "%%%% %s (%d)" title (List.length rules)
    :: List.map pp_rule rules
  in
  (* the adorned plan each guarded body follows once its receiver slot is
     seeded from the magic set *)
  let plans =
    List.concat_map
      (fun ((r : Rule.t), recv) ->
        let bindings =
          match (recv : Ast.reference) with
          | Ast.Var v -> (
            match List.assoc_opt v r.body.named with
            | Some slot -> [ (slot, Store.name store "$demand") ]
            | None -> [])
          | _ -> []
        in
        (pp_rule r.source :: List.map (fun l -> "%   " ^ l)
          (Semantics.Solve.explain ~order:Semantics.Solve.Compiled ~bindings
             store r.body)))
      compiled_guarded
  in
  (Printf.sprintf "%%%% adorned relations (%d)" (List.length adorned)
   :: adorned)
  @ section "magic seeds" seeds
  @ section "magic rules" magic
  @ section "guarded rules" guarded
  @ section "unguarded rules" (List.map (fun (r : Rule.t) -> r.source) unguarded)
  @ [ Printf.sprintf "%%%% dropped rules: %d" n_dropped ]
  @ (match plans with
    | [] -> []
    | _ -> "%% guarded plans (receiver bound)" :: plans)

let transform store (all_rules : Rule.t list) query_lits =
  let q = Semantics.Flatten.literals store query_lits in
  let goals = Ir.query_rels q.atoms in
  let relevant = Stratify.live_rules all_rules ~goals in
  match gate query_lits goals relevant with
  | Some fb -> Error fb
  | None ->
    let proper =
      List.filter
        (fun (r : Rule.t) -> r.source.body <> [] || r.reads <> [])
        relevant
    in
    let levels = compute_levels store proper query_lits in
    let seed_pairs, magic_pairs, guarded_triples, unguarded, n_dropped =
      emit store proper query_lits levels
    in
    let seeds = List.map fst seed_pairs in
    let magic = List.map fst magic_pairs in
    let guarded = List.map (fun (ast, _, _) -> ast) guarded_triples in
    let generated = seeds @ magic @ guarded in
    if
      List.exists
        (fun ru -> Syntax.Wellformed.check_rule ru <> Ok ())
        generated
    then Error Unsafe
    else begin
      (* Synthesized rules inherit the span and origin of the user rule
         they were derived from, so diagnostics report the source text. *)
      let compile_from (orig : Rule.t option) ast =
        match orig with
        | Some r ->
          Rule.compile ?span:r.span
            ~origin:(Option.value r.origin ~default:r.source)
            store ast
        | None -> Rule.compile store ast
      in
      let compiled_guarded =
        List.map
          (fun (ast, recv, r) -> (compile_from (Some r) ast, recv))
          guarded_triples
      in
      let compiled =
        List.map
          (fun (ast, orig) -> compile_from orig ast)
          (seed_pairs @ magic_pairs)
        @ List.map fst compiled_guarded
        @ unguarded
      in
      let strat = Stratify.compute store compiled in
      Ok
        {
          rules = compiled;
          strat;
          n_seeds = List.length seeds;
          n_magic = List.length magic;
          n_guarded = List.length guarded;
          n_unguarded = List.length unguarded;
          n_dropped;
          listing =
            listing_of store levels ~seeds ~magic ~guarded ~unguarded
              ~n_dropped compiled_guarded;
        }
    end
