(** A small persistent pool of worker {!Domain}s for data-parallel task
    batches.

    The parallel fixpoint evaluates many independent rule bodies per
    round; spawning domains per round would dominate small rounds, so the
    pool keeps [size - 1] worker domains alive across rounds and the
    calling domain participates as the [size]-th worker. Tasks within a
    batch are claimed dynamically (an index counter under the pool lock),
    which load-balances skewed rule costs; determinism is the {e caller's}
    concern — tasks must write results into per-task slots so the caller
    can consume them in task order, independent of execution order.

    All synchronisation is a single mutex + two condition variables;
    mutex acquire/release pairs give every worker a happens-before edge on
    the memory the caller wrote before {!run}, and the caller one on
    everything workers wrote before completing. *)

type t

(** [create size] spawns [size - 1] worker domains ([size >= 1];
    [size = 1] spawns none and {!run} degenerates to a sequential loop). *)
val create : int -> t

(** Total parallelism, including the calling domain. *)
val size : t -> int

(** [run t n f] evaluates [f 0 .. f (n-1)] across the pool and returns
    when all have finished. If any task raises, remaining unclaimed tasks
    are abandoned and the first exception is re-raised in the caller.
    Not re-entrant: one batch at a time. *)
val run : t -> int -> (int -> unit) -> unit

(** Join the worker domains. The pool is unusable afterwards; calling
    {!shutdown} twice is harmless. *)
val shutdown : t -> unit
