open Syntax.Ast
module Sig = Oodb.Signature
module Obj_set = Oodb.Obj_id.Set

type warning = {
  w_rule : Syntax.Ast.rule;
  w_span : Syntax.Token.span option;
  w_message : string;
}

let pp_warning ppf w =
  (match w.w_span with
  | Some sp -> Format.fprintf ppf "%a: " Syntax.Token.pp_span sp
  | None -> ());
  Format.fprintf ppf "%a: %s" Syntax.Pretty.pp_rule w.w_rule w.w_message

let const_obj store : reference -> Oodb.Obj_id.t option = function
  | Name n -> Some (Oodb.Store.name store n)
  | Int_lit n -> Some (Oodb.Store.int store n)
  | Str_lit s -> Some (Oodb.Store.str store s)
  | Var _ | Paren _ | Path _ | Regex _ | Filter _ | Isa _ -> None

(* Classes statically known for a variable: collected from body literals of
   the form [X : c] with constant [c] (Isa nodes anywhere in positive
   literals). *)
let infer_var_classes store (body : literal list) =
  let tbl = Hashtbl.create 8 in
  let add v c =
    let cur = Option.value ~default:Obj_set.empty (Hashtbl.find_opt tbl v) in
    Hashtbl.replace tbl v (Obj_set.add c cur)
  in
  let visit_ref t =
    ignore
      (fold_reference
         (fun () sub ->
           match sub with
           | Isa { recv = Var v; cls } -> (
             match const_obj store cls with
             | Some c -> add v c
             | None -> ())
           | _ -> ())
         () t)
  in
  List.iter (function Pos t -> visit_ref t | Neg _ -> ()) body;
  tbl

(* Static class edges from the whole rule set (facts included), to close
   inferred classes upwards. *)
let static_closure rules =
  let edges =
    List.concat_map (fun (r : Rule.t) -> r.class_edges) rules
  in
  let parents = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      let cur =
        Option.value ~default:Obj_set.empty (Hashtbl.find_opt parents a)
      in
      Hashtbl.replace parents a (Obj_set.add b cur))
    edges;
  let rec close c acc =
    let direct =
      Option.value ~default:Obj_set.empty (Hashtbl.find_opt parents c)
    in
    Obj_set.fold
      (fun p acc ->
        if Obj_set.mem p acc then acc else close p (Obj_set.add p acc))
      direct acc
  in
  fun c -> close c (Obj_set.singleton c)

let scalarity_of_rhs = function
  | Rscalar _ -> Some Sig.Scalar
  | Rset_ref _ | Rset_enum _ -> Some Sig.Set_valued
  | Rsig_scalar _ | Rsig_set _ -> None

(* Result classes statically known for a reference: constants with known
   classes are out of scope (they live in the store at runtime); variables
   use the inferred table. *)
let known_classes ~close tbl = function
  | Var v -> (
    match Hashtbl.find_opt tbl v with
    | Some cs ->
      Some (Obj_set.fold (fun c acc -> Obj_set.union acc (close c)) cs Obj_set.empty)
    | None -> None)
  | Name _ | Int_lit _ | Str_lit _ | Paren _ | Path _ | Regex _ | Filter _
  | Isa _ ->
    None

let check_rule store signatures ~close (rule : Rule.t) =
  let tbl = infer_var_classes store rule.source.body in
  let warnings = ref [] in
  let warn fmt =
    Format.kasprintf
      (fun m ->
        warnings :=
          { w_rule = rule.source; w_span = rule.span; w_message = m }
          :: !warnings)
      fmt
  in
  let obj = Oodb.Universe.pp_obj (Oodb.Store.universe store) in
  let visit () sub =
    match sub with
    | Filter { f_recv; f_meth; f_args; f_rhs } -> (
      match (scalarity_of_rhs f_rhs, const_obj store f_meth) with
      | Some scalarity, Some meth -> (
        match known_classes ~close tbl f_recv with
        | None -> ()
        | Some recv_classes ->
          let applicable =
            List.filter
              (fun (e : Sig.entry) ->
                Oodb.Obj_id.equal e.meth meth
                && e.scalarity = scalarity
                && List.length e.arg_classes = List.length f_args
                && Obj_set.mem e.cls recv_classes)
              (Sig.entries signatures)
          in
          List.iter
            (fun (e : Sig.entry) ->
              let results =
                match f_rhs with
                | Rscalar r -> [ r ]
                | Rset_enum rs -> rs
                | Rset_ref _ | Rsig_scalar _ | Rsig_set _ -> []
              in
              List.iter
                (fun r ->
                  match known_classes ~close tbl r with
                  | Some result_classes
                    when not (Obj_set.mem e.result_class result_classes) ->
                    warn
                      "result %a of method %a is inferred to be in %s but \
                       the signature requires %a"
                      Syntax.Pretty.pp_reference r obj meth
                      (String.concat ", "
                         (List.map
                            (Format.asprintf "%a" obj)
                            (Obj_set.elements result_classes)))
                      obj e.result_class
                  | Some _ | None -> ())
                results)
            applicable)
      | _ -> ())
    | Name _ | Int_lit _ | Str_lit _ | Var _ | Paren _ | Path _ | Regex _
    | Isa _ ->
      ()
  in
  fold_reference visit () rule.source.head;
  List.rev !warnings

let check_rules store signatures rules =
  let close = static_closure rules in
  List.concat_map (check_rule store signatures ~close) rules
