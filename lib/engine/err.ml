type functional_conflict = {
  c_meth : Oodb.Obj_id.t;
  c_recv : Oodb.Obj_id.t;
  c_args : Oodb.Obj_id.t list;
  existing : Oodb.Obj_id.t;
  proposed : Oodb.Obj_id.t;
  rule : Syntax.Ast.rule option;
}

type unstratifiable = {
  u_message : string;
  u_rule : Syntax.Ast.rule option;
}

exception Functional_conflict of functional_conflict
exception Isa_cycle of Oodb.Obj_id.t * Oodb.Obj_id.t
exception Reserved_self
exception Unstratifiable of unstratifiable
exception Diverged of string

let unstratifiable ?rule fmt =
  Format.kasprintf
    (fun msg -> raise (Unstratifiable { u_message = msg; u_rule = rule }))
    fmt

let pp_functional_conflict store ppf c =
  let obj = Oodb.Universe.pp_obj (Oodb.Store.universe store) in
  Format.fprintf ppf
    "scalar method %a on %a already yields %a; cannot also yield %a" obj
    c.c_meth obj c.c_recv obj c.existing obj c.proposed;
  match c.rule with
  | Some r -> Format.fprintf ppf " (rule: %a)" Syntax.Pretty.pp_rule r
  | None -> ()

let message store = function
  | Functional_conflict c ->
    Some (Format.asprintf "%a" (pp_functional_conflict store) c)
  | Isa_cycle (o, c) ->
    let obj = Oodb.Universe.pp_obj (Oodb.Store.universe store) in
    Some
      (Format.asprintf "class edge %a : %a would close a hierarchy cycle" obj
         o obj c)
  | Reserved_self -> Some "the built-in method 'self' cannot be redefined"
  | Unstratifiable u ->
    let where =
      match u.u_rule with
      | Some r -> Format.asprintf " (rule: %a)" Syntax.Pretty.pp_rule r
      | None -> ""
    in
    Some ("program is not stratifiable: " ^ u.u_message ^ where)
  | Diverged msg -> Some ("evaluation diverged: " ^ msg)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Process exit codes shared by the CLI. Documented in README.md. *)

let exit_ok = 0

(* Evaluation errors: scalar conflicts, hierarchy cycles, divergence. *)
let exit_runtime = 1

(* Load errors: lexing/parse failures, ill-formed rules, bad signatures. *)
let exit_load = 2

(* Static analysis refused the program: [pathlog check] found diagnostics
   at or above the --deny level; [lint] / [run --types] found issues. *)
let exit_analysis = 3
