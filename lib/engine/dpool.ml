type t = {
  size : int;
  m : Mutex.t;
  work : Condition.t;  (* workers: a new batch (or stop) is available *)
  finished : Condition.t;  (* caller: all participants left the batch *)
  mutable task : int -> unit;
  mutable n : int;  (* batch size *)
  mutable next : int;  (* next unclaimed task index *)
  mutable running : int;  (* participants still inside the batch *)
  mutable generation : int;  (* bumped per batch; workers key off it *)
  mutable failure : exn option;  (* first task exception of the batch *)
  mutable stop : bool;
  mutable domains : unit Domain.t array;
}

let no_task (_ : int) = ()

(* Claim and execute tasks until the batch is drained. Called (and
   returns) with [t.m] held. *)
let participate t =
  while t.next < t.n do
    let i = t.next in
    t.next <- t.next + 1;
    Mutex.unlock t.m;
    let outcome = try Ok (t.task i) with e -> Error e in
    Mutex.lock t.m;
    match outcome with
    | Ok () -> ()
    | Error e ->
      if t.failure = None then t.failure <- Some e;
      (* abandon unclaimed tasks; peers finish their current one *)
      t.next <- t.n
  done;
  t.running <- t.running - 1;
  if t.running = 0 then Condition.broadcast t.finished

let worker t () =
  Mutex.lock t.m;
  let seen = ref 0 in
  let rec loop () =
    if t.stop then Mutex.unlock t.m
    else if t.generation = !seen then begin
      Condition.wait t.work t.m;
      loop ()
    end
    else begin
      seen := t.generation;
      participate t;
      loop ()
    end
  in
  loop ()

let create size =
  if size < 1 then invalid_arg "Dpool.create: size < 1";
  let t =
    {
      size;
      m = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      task = no_task;
      n = 0;
      next = 0;
      running = 0;
      generation = 0;
      failure = None;
      stop = false;
      domains = [||];
    }
  in
  t.domains <- Array.init (size - 1) (fun _ -> Domain.spawn (worker t));
  t

let size t = t.size

let run t n f =
  if n > 0 then begin
    Mutex.lock t.m;
    t.task <- f;
    t.n <- n;
    t.next <- 0;
    t.failure <- None;
    (* every worker joins each batch exactly once (they key off the
       generation), plus the caller *)
    t.running <- t.size;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work;
    participate t;
    while t.running > 0 do
      Condition.wait t.finished t.m
    done;
    t.task <- no_task;
    let failure = t.failure in
    Mutex.unlock t.m;
    match failure with Some e -> raise e | None -> ()
  end

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  Array.iter Domain.join t.domains;
  t.domains <- [||]
