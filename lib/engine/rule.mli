(** Compiled rules: flattened body plus the dependency information the
    stratifier and the semi-naive fixpoint need. *)

type t = {
  uid : int;
      (** process-unique identity; the fixpoint engine keys its compiled
          plan cache on it *)
  source : Syntax.Ast.rule;
  origin : Syntax.Ast.rule option;
      (** for rules synthesized by a transform (demand guards, magic
          rules), the user-written rule they were derived from;
          diagnostics report this rule's text instead of the synthesized
          form *)
  span : Syntax.Token.span option;
      (** source extent of the statement the rule was parsed from, when it
          came from text (diagnostics anchor on it); transforms propagate
          the originating rule's span *)
  body : Semantics.Ir.query;
  defines : Semantics.Ir.rel list;
      (** relations the head may insert into (skolemised paths included) *)
  reads : Semantics.Ir.rel list;
      (** relations whose growth must re-trigger this rule: all body
          relations (top-level and nested) plus the relations a head
          set-valued right-hand side evaluates *)
  completion_reads : Semantics.Ir.rel list;
      (** relations that must be fully computed before this rule runs: the
          sub-query relations of body set-inclusion filters and of negated
          literals (section 6 stratification) *)
  seedable : (Semantics.Ir.rel * int) list;
      (** top-level body atom indexes usable as semi-naive delta seeds,
          with the relation each one scans *)
  reads_any : bool;  (** reads [R_any]: re-evaluate on any change *)
  class_edges : (Oodb.Obj_id.t * Oodb.Obj_id.t) list;
      (** constant-to-constant class edges asserted by the head; the
          stratifier's static class hierarchy *)
}

(** Compile a well-formedness-checked rule. Interning happens against the
    store's universe. [origin] records the user-written rule a synthesized
    rule was derived from. *)
val compile :
  ?span:Syntax.Token.span ->
  ?origin:Syntax.Ast.rule ->
  Oodb.Store.t ->
  Syntax.Ast.rule ->
  t

(** Relations a reference reads when evaluated (used for head [->>]
    right-hand sides and query dependency reporting). *)
val rels_of_reference : Oodb.Store.t -> Syntax.Ast.reference -> Semantics.Ir.rel list

(** Relations of scalar head paths that can create skolem (virtual)
    objects — [X.address], [M.tc] — for the static skolem-cycle analysis.
    Variable/computed method positions contribute [R_any]. *)
val skolem_defines :
  Oodb.Store.t -> Syntax.Ast.reference -> Semantics.Ir.rel list
