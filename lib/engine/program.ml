module Ast = Syntax.Ast

type t = {
  statements : Ast.statement list;  (* the source, for rebuilds *)
  store : Oodb.Store.t;
  signatures : Oodb.Signature.t;
  rules : Rule.t list;
  strat : Stratify.t;
  queries : Ast.literal list list;
  mutable config : Fixpoint.config;
      (* mutable only for [set_estimates]: estimates change plan ranking,
         never answers, and the plan cache keys on the estimates epoch *)
  provenance : Provenance.t;
  plans : Fixpoint.plan_cache;
      (* shared across every evaluation of this program; the cache key's
         variant component keeps full / pruned / demand modes apart *)
  mutable facts_loaded : bool;
  mutable degraded : Budget.reason option;
      (* set when a budgeted [run] was cut short: the store holds a sound
         partial model, and answers must be surfaced as degraded *)
}

exception Invalid of string

type answer = {
  columns : string list;
  rows : Oodb.Obj_id.t list list;
}

let invalid fmt = Format.kasprintf (fun msg -> raise (Invalid msg)) fmt

(* Signature declarations name classes with ground simple references. *)
let ground_object store (r : Ast.reference) =
  match r with
  | Name n -> Oodb.Store.name store n
  | Int_lit n -> Oodb.Store.int store n
  | Str_lit s -> Oodb.Store.str store s
  | Paren _ | Var _ | Path _ | Regex _ | Filter _ | Isa _ ->
    invalid "signature declarations must use ground names: %a"
      Syntax.Pretty.pp_reference r

let load_signature store signatures (cls, meth, args, result, scal) =
  let entry =
    {
      Oodb.Signature.cls = ground_object store cls;
      meth = ground_object store meth;
      arg_classes = List.map (ground_object store) args;
      result_class = ground_object store result;
      scalarity =
        (match scal with
        | Syntax.Scalarity.Scalar -> Oodb.Signature.Scalar
        | Syntax.Scalarity.Set_valued -> Oodb.Signature.Set_valued);
    }
  in
  Oodb.Signature.add signatures entry

let create_spanned ?(config = Fixpoint.default_config) spanned =
  let store = Oodb.Store.create () in
  let signatures = Oodb.Signature.create () in
  let rules = ref [] in
  let queries = ref [] in
  List.iter
    (fun (stmt, span) ->
      match Syntax.Wellformed.signature_of_statement stmt with
      | Some decl -> load_signature store signatures decl
      | None -> (
        match stmt with
        | Ast.Rule r -> (
          match Syntax.Wellformed.check_rule r with
          | Ok () -> rules := Rule.compile ?span store r :: !rules
          | Error e ->
            invalid "ill-formed rule %a: %a" Syntax.Pretty.pp_rule r
              Syntax.Wellformed.pp_error e)
        | Ast.Query lits -> (
          match Syntax.Wellformed.check_query lits with
          | Ok () -> queries := lits :: !queries
          | Error e ->
            invalid "ill-formed query: %a" Syntax.Wellformed.pp_error e)))
    spanned;
  let rules = List.rev !rules in
  let strat = Stratify.compute store rules in
  {
    statements = List.map fst spanned;
    store;
    signatures;
    rules;
    strat;
    queries = List.rev !queries;
    config;
    provenance = Provenance.create ();
    plans = Fixpoint.plan_cache ();
    facts_loaded = false;
    degraded = None;
  }

let create ?config statements =
  create_spanned ?config (List.map (fun s -> (s, None)) statements)

let of_string ?config text =
  match Syntax.Parser.program_spanned text with
  | spanned ->
    create_spanned ?config (List.map (fun (s, sp) -> (s, Some sp)) spanned)
  | exception Syntax.Parser.Error (pos, msg) ->
    invalid "%a: %s" Syntax.Token.pp_pos pos msg

let store t = t.store
let config t = t.config

let set_estimates t estimates = t.config <- { t.config with estimates }
let universe t = Oodb.Store.universe t.store
let rules t = t.rules
let signatures t = t.signatures
let embedded_queries t = t.queries
let strata t = t.strat.strata

let run ?budget t =
  t.facts_loaded <- true;
  let config =
    match budget with Some _ -> { t.config with budget } | None -> t.config
  in
  let stats =
    Fixpoint.run ~config ~provenance:t.provenance ~plans:t.plans t.store
      t.strat
  in
  (match stats.Fixpoint.degraded with
  | Some _ as d -> t.degraded <- d
  | None ->
    (* a later unbudgeted (or uncut) run reached the fixpoint: the model
       is complete again *)
    t.degraded <- None);
  stats

let degraded t = t.degraded

let provenance t = t.provenance

(* Execute the fact statements only (they are ground); idempotent. *)
let load_facts t =
  if not t.facts_loaded then begin
    t.facts_loaded <- true;
    List.iter
      (fun (r : Rule.t) ->
        if r.source.body = [] then begin
          let changes = ref 0 in
          let on_insert fact =
            Provenance.record t.provenance fact Provenance.Extensional
          in
          ignore
            (Head.execute ~on_insert t.store
               ~env:Semantics.Valuation.Env.empty ~rule:r.source ~changes
               r.source.head)
        end)
      t.rules
  end

let query ?budget t lits =
  (match Syntax.Wellformed.check_query lits with
  | Ok () -> ()
  | Error e -> invalid "ill-formed query: %a" Syntax.Wellformed.pp_error e);
  let q = Semantics.Flatten.literals t.store lits in
  let columns = List.map fst q.named in
  let interrupt = Fixpoint.interrupt_of budget in
  let rows =
    Semantics.Solve.named_solutions ~order:t.config.order ?interrupt t.store
      q
  in
  let rows =
    (* a ground query answers with one empty row when entailed *)
    match (columns, rows) with
    | [], [] ->
      if
        Semantics.Solve.satisfiable ~order:t.config.order ?interrupt t.store
          q
      then [ [] ]
      else []
    | _ -> rows
  in
  { columns; rows }

let strip_query_syntax s =
  let s = String.trim s in
  let s =
    if String.length s >= 2 && String.sub s 0 2 = "?-" then
      String.sub s 2 (String.length s - 2)
    else s
  in
  let s = String.trim s in
  if String.length s > 0 && s.[String.length s - 1] = '.' then
    String.sub s 0 (String.length s - 1)
  else s

let query_string ?budget t text =
  match Syntax.Parser.literals (strip_query_syntax text) with
  | lits -> query ?budget t lits
  | exception Syntax.Parser.Error (pos, msg) ->
    invalid "%a: %s" Syntax.Token.pp_pos pos msg

let run_queries t = List.map (fun lits -> (lits, query t lits)) t.queries

let row_to_string t row =
  String.concat ", "
    (List.map (Oodb.Universe.to_string (universe t)) row)

let pp_answer t ppf answer =
  match answer.columns with
  | [] ->
    Format.fprintf ppf "%s" (if answer.rows = [] then "no" else "yes")
  | _ ->
    Format.fprintf ppf "%s@." (String.concat ", " answer.columns);
    List.iter
      (fun row -> Format.fprintf ppf "%s@." (row_to_string t row))
      answer.rows

let check_types t ~mode = Oodb.Signature.check t.store t.signatures ~mode

let lint_types t = Typecheck.check_rules t.store t.signatures t.rules

let add_fact t reference =
  let rule = Syntax.Ast.fact reference in
  (match Syntax.Wellformed.check_rule rule with
  | Ok () -> ()
  | Error e ->
    invalid "ill-formed fact %a: %a" Syntax.Pretty.pp_reference reference
      Syntax.Wellformed.pp_error e);
  let changes = ref 0 in
  let on_insert fact =
    Provenance.record t.provenance fact Provenance.Extensional
  in
  ignore
    (Head.execute ~on_insert t.store ~env:Semantics.Valuation.Env.empty
       ~rule ~changes reference);
  !changes

let add_fact_string t text =
  match Syntax.Parser.statement text with
  | Syntax.Ast.Rule { head; body = [] } -> add_fact t head
  | Syntax.Ast.Rule _ | Syntax.Ast.Query _ ->
    invalid "add_fact expects a single fact statement"
  | exception Syntax.Parser.Error (pos, msg) ->
    invalid "%a: %s" Syntax.Token.pp_pos pos msg

let dump_model t = Format.asprintf "%a" Oodb.Store.pp t.store

let explain t lits =
  let q = Semantics.Flatten.literals t.store lits in
  Semantics.Solve.explain ~order:t.config.order
    ?estimator:t.config.estimates t.store q

let explain_string t text =
  match Syntax.Parser.literals (strip_query_syntax text) with
  | lits -> explain t lits
  | exception Syntax.Parser.Error (pos, msg) ->
    invalid "%a: %s" Syntax.Token.pp_pos pos msg

let parse_query text =
  match Syntax.Parser.literals (strip_query_syntax text) with
  | lits -> lits
  | exception Syntax.Parser.Error (pos, msg) ->
    invalid "%a: %s" Syntax.Token.pp_pos pos msg

(* ------------------------------------------------------------------ *)
(* Demand-focused evaluation: run only the rules transitively relevant to
   a query's relations, then solve. Sound because evaluation is monotone
   and the skipped rules cannot contribute tuples to any relation the
   query (or its support) reads. *)

let relevant_rules t (q : Semantics.Ir.query) =
  Stratify.live_rules t.rules ~goals:(Semantics.Ir.query_rels q.atoms)

(* Rules live for the program's own embedded queries; all rules when the
   program has no queries (everything is then an output). *)
let live_rules t =
  match t.queries with
  | [] -> t.rules
  | qs ->
    let goals =
      List.concat_map
        (fun lits ->
          Semantics.Ir.query_rels (Semantics.Flatten.literals t.store lits).atoms)
        qs
    in
    Stratify.live_rules t.rules ~goals

let run_live t =
  t.facts_loaded <- true;
  let keep = live_rules t in
  let skipped = List.length t.rules - List.length keep in
  let config =
    if skipped = 0 then t.config
    else begin
      let module Int_set = Set.Make (Int) in
      let live = Int_set.of_list (List.map (fun (r : Rule.t) -> r.uid) keep) in
      {
        t.config with
        Fixpoint.rule_filter =
          Some (fun (r : Rule.t) -> Int_set.mem r.uid live);
        plan_variant = 1;
      }
    end
  in
  let stats =
    Fixpoint.run ~config ~provenance:t.provenance ~plans:t.plans t.store
      t.strat
  in
  (stats, skipped)

let query_focused t lits =
  (match Syntax.Wellformed.check_query lits with
  | Ok () -> ()
  | Error e -> invalid "ill-formed query: %a" Syntax.Wellformed.pp_error e);
  let q = Semantics.Flatten.literals t.store lits in
  let rules = relevant_rules t q in
  let strat = Stratify.compute t.store rules in
  let stats =
    Fixpoint.run
      ~config:{ t.config with Fixpoint.plan_variant = 1 }
      ~provenance:t.provenance ~plans:t.plans t.store strat
  in
  (query t lits, stats, List.length rules)

let query_topdown t lits =
  (match Syntax.Wellformed.check_query lits with
  | Ok () -> ()
  | Error e -> invalid "ill-formed query: %a" Syntax.Wellformed.pp_error e);
  load_facts t;
  let q = Semantics.Flatten.literals t.store lits in
  let idb_rules =
    List.filter (fun (r : Rule.t) -> r.source.body <> []) t.rules
  in
  match Topdown.query t.store idb_rules q with
  | Some (rows, stats) ->
    Some ({ columns = List.map fst q.named; rows }, stats)
  | None -> None

(* ------------------------------------------------------------------ *)
(* Demand-driven evaluation: magic-sets transform, query-seeded fixpoint.
   See {!Demand}. The transformed fragment accumulates in the program's
   own store — monotone, so repeated demand queries (and a later full
   {!run}) compose soundly. *)

type demand_report = {
  d_fallback : Demand.fallback option;
  d_stats : Fixpoint.stats;
  d_seeds : int;
  d_magic_rules : int;
  d_guarded : int;
  d_unguarded : int;
  d_dropped : int;
  d_magic_facts : int;
}

let query_demand ?budget t lits =
  (match Syntax.Wellformed.check_query lits with
  | Ok () -> ()
  | Error e -> invalid "ill-formed query: %a" Syntax.Wellformed.pp_error e);
  match Demand.transform t.store t.rules lits with
  | Error fb ->
    (* negation / inclusion / hilog strata make the transform unsound:
       fall back to honest full materialisation *)
    let stats = run ?budget t in
    let answer = query ?budget t lits in
    ( answer,
      {
        d_fallback = Some fb;
        d_stats = stats;
        d_seeds = 0;
        d_magic_rules = 0;
        d_guarded = 0;
        d_unguarded = 0;
        d_dropped = 0;
        d_magic_facts = Demand.magic_fact_total t.store;
      } )
  | Ok d ->
    load_facts t;
    let config =
      {
        t.config with
        Fixpoint.plan_variant = 2;
        budget = (match budget with Some _ -> budget | None -> t.config.budget);
      }
    in
    let stats =
      Fixpoint.run ~config ~provenance:t.provenance ~plans:t.plans t.store
        d.strat
    in
    (* a budget-cut demand run left a sound but possibly incomplete
       fragment: flag it exactly as a cut full run would be *)
    (match stats.Fixpoint.degraded with
    | Some _ as dg -> t.degraded <- dg
    | None -> ());
    let answer = query ?budget t lits in
    ( answer,
      {
        d_fallback = None;
        d_stats = stats;
        d_seeds = d.Demand.n_seeds;
        d_magic_rules = d.Demand.n_magic;
        d_guarded = d.Demand.n_guarded;
        d_unguarded = d.Demand.n_unguarded;
        d_dropped = d.Demand.n_dropped;
        d_magic_facts = Demand.magic_fact_total t.store;
      } )

let query_demand_string ?budget t text =
  match Syntax.Parser.literals (strip_query_syntax text) with
  | lits -> query_demand ?budget t lits
  | exception Syntax.Parser.Error (pos, msg) ->
    invalid "%a: %s" Syntax.Token.pp_pos pos msg

let explain_demand t lits =
  (match Syntax.Wellformed.check_query lits with
  | Ok () -> ()
  | Error e -> invalid "ill-formed query: %a" Syntax.Wellformed.pp_error e);
  match Demand.transform t.store t.rules lits with
  | Error fb ->
    [
      Printf.sprintf
        "%% demand transform unavailable (%s): full materialisation would \
         run"
        (Demand.fallback_to_string fb);
    ]
  | Ok d -> d.Demand.listing

let explain_demand_string t text =
  match Syntax.Parser.literals (strip_query_syntax text) with
  | lits -> explain_demand t lits
  | exception Syntax.Parser.Error (pos, msg) ->
    invalid "%a: %s" Syntax.Token.pp_pos pos msg

let why ?budget t reference =
  match Fact.of_reference t.store reference with
  | None ->
    invalid
      "why expects a ground membership or method fact, e.g. a : c or \
       x[m -> y]"
  | Some fact ->
    let interrupt = Fixpoint.interrupt_of budget in
    Provenance.explain ?interrupt t.store t.provenance fact

let why_string ?budget t text =
  match Syntax.Parser.reference (strip_query_syntax text) with
  | r -> why ?budget t r
  | exception Syntax.Parser.Error (pos, msg) ->
    invalid "%a: %s" Syntax.Token.pp_pos pos msg

(* ------------------------------------------------------------------ *)
(* What-if analysis: rebuild with edited statements and diff the models.
   The store is append-only by design (semi-naive deltas rely on it), so
   retraction is recomputation over the edited source — simple, always
   correct, and linear in the program, which matches the scale the paper
   targets. *)

let statements t = t.statements

let rebuild ?(add = []) ?(retract = fun _ -> false) t =
  let kept = List.filter (fun s -> not (retract s)) t.statements in
  let p = create ~config:t.config (kept @ add) in
  ignore (run p);
  p

let model_lines t =
  dump_model t |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")
  |> List.sort_uniq compare

let diff_models ~before ~after =
  (* model_lines yields sorted, deduplicated lines, so a single linear
     merge finds both sides of the symmetric difference. *)
  let rec merge added removed a b =
    match (a, b) with
    | [], [] -> (List.rev added, List.rev removed)
    | a, [] -> (List.rev_append added a, List.rev removed)
    | [], b -> (List.rev added, List.rev_append removed b)
    | x :: a', y :: b' ->
      let c = compare x y in
      if c = 0 then merge added removed a' b'
      else if c < 0 then merge (x :: added) removed a' b
      else merge added (y :: removed) a b'
  in
  merge [] [] (model_lines after) (model_lines before)

let what_if ?(add = []) ?(retract = fun _ -> false) t =
  (* make sure the base model is computed *)
  ignore (run t);
  let after = rebuild ~add ~retract t in
  diff_models ~before:t ~after

let verify_model t =
  let rec go = function
    | [] -> Ok ()
    | (rule : Rule.t) :: rest -> (
      match Semantics.Entail.find_violation t.store rule.source with
      | None -> go rest
      | Some cex ->
        let msg =
          String.concat ", "
            (List.map
               (fun (v, o) ->
                 v ^ " = " ^ Oodb.Universe.to_string (universe t) o)
               cex)
        in
        Error (rule.source, msg))
  in
  go t.rules
