(** Rule-head execution: make the head true under a body solution.

    This is where virtual objects come from (section 6 of the paper). The
    head is a scalar reference; executing it under a variable valuation
    walks the reference and

    - {e locates} every sub-object, creating a deterministic skolem object
      when a scalar path is undefined ("a path in a rule head may lead to
      the definition of virtual objects") — including paths in method
      position, which is how the generic [kids.tc] program mints its
      closure method;
    - {e asserts} every filter: [->] inserts a scalar tuple (raising
      {!Err.Functional_conflict} if a different result already exists),
      [->>] inserts memberships, [:] inserts a hierarchy edge;
    - for a [->>] filter whose right-hand side is a set-valued reference
      (program 4.4 used as a head), inserts every {e current} member of the
      reference's valuation — no objects are invented for it.

    Nested molecules in result position are asserted recursively: the head
    must become true, and assertion is the minimal way to make it so.

    [changes] counts the tuples actually inserted, which is what the
    fixpoint uses to detect saturation. *)

val execute :
  ?on_insert:(Fact.t -> unit) ->
  ?on_assert:(Fact.t -> unit) ->
  Oodb.Store.t ->
  env:Semantics.Valuation.env ->
  rule:Syntax.Ast.rule ->
  changes:int ref ->
  Syntax.Ast.reference ->
  Oodb.Obj_id.t
(** [on_insert] is called once per tuple actually inserted (provenance
    recording). [on_assert] is called once per tuple the head {e asserts} —
    whether it was freshly inserted or already present — which is what
    support counting needs: a derivation supports its head facts even when
    another derivation got there first. *)
