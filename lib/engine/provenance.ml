module Ir = Semantics.Ir

type source =
  | Extensional
  | Derived of {
      rule : Syntax.Ast.rule;
      env : (string * Oodb.Obj_id.t) list;
    }

type proof = {
  fact : Fact.t;
  source : source;
  support : proof list;
}

module Fact_tbl = Hashtbl.Make (struct
  type t = Fact.t

  let equal = Fact.equal
  let hash = Fact.hash
end)

type t = source Fact_tbl.t

let create () = Fact_tbl.create 256

let record t fact source =
  if not (Fact_tbl.mem t fact) then Fact_tbl.add t fact source

let lookup t fact = Fact_tbl.find_opt t fact

let forget t fact = Fact_tbl.remove t fact

let size t = Fact_tbl.length t

(* A chain of direct class edges from [o] up to [c]; the facts supporting a
   derived (transitive) membership. *)
let isa_support store o c =
  let direct_parents x =
    Oodb.Vec.fold
      (fun acc (e : Oodb.Store.ientry) ->
        if Oodb.Store.isa_live e && Oodb.Obj_id.equal e.i_sub x then
          e.i_cls :: acc
        else acc)
      []
      (Oodb.Store.isa_log store)
  in
  let rec search visited x =
    if Oodb.Obj_id.equal x c then Some []
    else if Oodb.Obj_id.Set.mem x visited then None
    else
      let visited = Oodb.Obj_id.Set.add x visited in
      let rec try_parents = function
        | [] -> None
        | p :: rest -> (
          match search visited p with
          | Some chain -> Some (Fact.F_isa (x, p) :: chain)
          | None -> try_parents rest)
      in
      try_parents (direct_parents x)
  in
  Option.value ~default:[ Fact.F_isa (o, c) ] (search Oodb.Obj_id.Set.empty o)

(* The ground facts one solution of a rule body rests on. *)
let body_facts store (q : Ir.query) binding =
  let self_id = Oodb.Store.name store "self" in
  let deref = function
    | Ir.Const o -> o
    | Ir.V i -> binding.(i)
  in
  List.concat_map
    (fun (atom : Ir.atom) ->
      match atom with
      | A_isa (o, c) -> isa_support store (deref o) (deref c)
      | A_scalar { meth; recv; args; res } ->
        let meth = deref meth in
        if Oodb.Obj_id.equal meth self_id && args = [] then []
        else
          [
            Fact.F_scalar
              {
                meth;
                recv = deref recv;
                args = List.map deref args;
                res = deref res;
              };
          ]
      | A_member { meth; recv; args; res } ->
        let meth = deref meth in
        if Oodb.Obj_id.equal meth self_id && args = [] then []
        else
          [
            Fact.F_set
              {
                meth;
                recv = deref recv;
                args = List.map deref args;
                res = deref res;
              };
          ]
      (* a regex atom's support is the set of edges the product BFS
         traversed, which the join does not record; like negation and
         inclusion it contributes no individual ground facts *)
      | A_eq _ | A_subset _ | A_neg _ | A_regex _ -> [])
    q.atoms

let rec explain ?(max_depth = 64) ?interrupt store t fact =
  match lookup t fact with
  | None -> None
  | Some Extensional -> Some { fact; source = Extensional; support = [] }
  | Some (Derived { rule; env } as source) ->
    if max_depth <= 0 then Some { fact; source; support = [] }
    else begin
      let q = Semantics.Flatten.literals store rule.body in
      let bindings =
        List.filter_map
          (fun (name, slot) ->
            Option.map (fun o -> (slot, o)) (List.assoc_opt name env))
          q.named
      in
      let support = ref [] in
      Semantics.Solve.iter ?interrupt ~bindings ~limit:1 store q
        ~f:(fun binding ->
          support :=
            List.map
              (fun sub ->
                match
                  explain ~max_depth:(max_depth - 1) ?interrupt store t sub
                with
                | Some p -> p
                | None -> { fact = sub; source = Extensional; support = [] })
              (body_facts store q binding));
      Some { fact; source; support = !support }
    end

let pp_proof u ppf proof =
  let rec go indent ppf p =
    Format.fprintf ppf "%s%a" indent (Fact.pp u) p.fact;
    (match p.source with
    | Extensional -> Format.fprintf ppf "   (fact)"
    | Derived { rule; _ } ->
      Format.fprintf ppf "   (by %a)" Syntax.Pretty.pp_rule rule);
    List.iter
      (fun child -> Format.fprintf ppf "@,%a" (go (indent ^ "  ")) child)
      p.support
  in
  Format.fprintf ppf "@[<v>%a@]" (go "") proof
