open Syntax.Ast
module Store = Oodb.Store

(* The store-write fault boundary. Injected failures are transient: the
   write path is idempotent (duplicate inserts are no-ops), so a bounded
   retry hides them the way a real storage layer would; only a pathological
   streak propagates, as {!Fault.Injected}. *)
let write_faults () =
  if Fault.enabled () then begin
    let rec attempt n =
      try Fault.hit Fault.Store_write
      with Fault.Injected _ when n < 100 -> attempt (n + 1)
    in
    attempt 0
  end

let execute ?(on_insert = fun _ -> ()) ?(on_assert = fun _ -> ()) store ~env
    ~rule ~changes head =
  write_faults ();
  let self_id = Store.name store "self" in
  let add_scalar ~meth ~recv ~args ~res =
    if Oodb.Obj_id.equal meth self_id then
      if Oodb.Obj_id.equal recv res then ()
      else raise Err.Reserved_self
    else
      match Store.add_scalar store ~meth ~recv ~args ~res with
      | Added ->
        incr changes;
        on_insert (Fact.F_scalar { meth; recv; args; res });
        on_assert (Fact.F_scalar { meth; recv; args; res })
      | Duplicate -> on_assert (Fact.F_scalar { meth; recv; args; res })
      | Conflict existing ->
        raise
          (Err.Functional_conflict
             {
               c_meth = meth;
               c_recv = recv;
               c_args = args;
               existing;
               proposed = res;
               rule = Some rule;
             })
  in
  let add_set ~meth ~recv ~args ~res =
    if Oodb.Obj_id.equal meth self_id then raise Err.Reserved_self
    else
      match Store.add_set store ~meth ~recv ~args ~res with
      | SAdded ->
        incr changes;
        on_insert (Fact.F_set { meth; recv; args; res });
        on_assert (Fact.F_set { meth; recv; args; res })
      | SDuplicate -> on_assert (Fact.F_set { meth; recv; args; res })
  in
  let add_isa o c =
    match Store.add_isa store o c with
    | IAdded ->
      incr changes;
      on_insert (Fact.F_isa (o, c));
      on_assert (Fact.F_isa (o, c))
    | IDuplicate -> on_assert (Fact.F_isa (o, c))
    | ICycle -> raise (Err.Isa_cycle (o, c))
  in
  (* Locate the single object a scalar head sub-reference denotes, creating
     skolem objects for undefined scalar paths and asserting filters along
     the way. *)
  let rec locate (t : reference) : Oodb.Obj_id.t =
    match t with
    | Name n -> Store.name store n
    | Int_lit n -> Store.int store n
    | Str_lit s -> Store.str store s
    | Var x -> (
      match Semantics.Valuation.Env.find_opt x env with
      | Some o -> o
      | None -> raise (Semantics.Valuation.Unbound_variable x))
    | Paren t' -> locate t'
    | Path { p_recv; p_sep = Dot; p_meth; p_args } ->
      let recv = locate p_recv in
      let meth = locate p_meth in
      if Oodb.Obj_id.equal meth self_id && p_args = [] then recv
      else begin
        let args = List.map locate p_args in
        match Store.scalar_lookup store ~meth ~recv ~args with
        | Some res -> res
        | None ->
          let sk =
            Oodb.Universe.skolem (Store.universe store) ~meth ~recv ~args
          in
          add_scalar ~meth ~recv ~args ~res:sk;
          sk
      end
    | Path { p_sep = Dotdot; _ } ->
      (* a well-formed head is scalar, so set-valued paths cannot occur in
         located positions *)
      invalid_arg "Head.execute: set-valued path in a located position"
    | Regex _ ->
      (* rejected by Wellformed (PL019): a regular path denotes a set and
         cannot be asserted *)
      invalid_arg "Head.execute: regular path in a rule head"
    | Isa { recv; cls } ->
      let o = locate recv in
      let c = locate cls in
      add_isa o c;
      o
    | Filter { f_recv; f_meth; f_args; f_rhs } ->
      let recv = locate f_recv in
      let meth = locate f_meth in
      let args = List.map locate f_args in
      (match f_rhs with
      | Rscalar rhs ->
        let res = locate rhs in
        add_scalar ~meth ~recv ~args ~res
      | Rset_enum elems ->
        List.iter
          (fun e -> add_set ~meth ~recv ~args ~res:(locate e))
          elems
      | Rset_ref s ->
        let current = Semantics.Valuation.eval store env s in
        Oodb.Obj_id.Set.iter
          (fun res -> add_set ~meth ~recv ~args ~res)
          current
      | Rsig_scalar _ | Rsig_set _ ->
        invalid_arg "Head.execute: signature declaration in a rule head");
      recv
  in
  locate head
