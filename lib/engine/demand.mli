(** Demand-driven evaluation: the magic-sets transform.

    Materialising the whole minimal model makes every query pay for every
    derivable fact. Given a query, this module rewrites the program so the
    semi-naive fixpoint derives only the fragment the query can actually
    read — the binding-aware generalisation of {!Stratify.live_rules}'s
    static relevance.

    The transform adorns relations from the query's bound/free pattern
    (receiver-bound path queries like [alice\[boss ->> {Y}\]] are the
    headline case, adornment [B]); a relation every occurrence of which has
    a bound receiver gets a {e magic predicate} — a set-valued method
    [magic$...] on the reserved object [$demand] holding the receivers
    demand has reached. Each rule defining a [B]-adorned relation is
    {e guarded}: its body is prefixed with a magic-membership literal on
    its head receiver, so it only fires for demanded receivers. {e Magic
    rules} propagate demand sideways: for every bound-receiver application
    in a rule body, a rule derives that receiver into the application's
    magic set from the body prefix that binds it (plus the guard). The
    query's own constants become magic {e seed} facts. Relations demanded
    with a free receiver anywhere stay unadorned ([F]) and their rules run
    unrestricted, exactly as relevance pruning would.

    Soundness: guarded rules derive a subset of the original program's
    minimal model (dropping body solutions of a monotone program loses
    only completeness, never soundness). Completeness for the seeded
    query follows the classic magic-sets argument: the demand analysis
    and the magic-rule emission walk rule bodies with the same
    left-to-right sideways-information-passing discipline, so every fact
    a query answer depends on has its receiver reached by a magic set
    (adornment [B]) or its relation fully derived (adornment [F]).

    The transform refuses programs it cannot treat soundly — see
    {!fallback}; callers then fall back to full materialisation. *)

(** Why the transform declined, in fallback-to-full-materialisation order
    of precedence:
    - [Negation]: a negated literal in the query or a relevant rule body.
      Restricting a stratum that a negation reads would make the
      complement unsound.
    - [Inclusion]: a set-inclusion filter ([t\[m ->> s\]] with a set-valued
      reference [s]) in the query or a relevant rule body — same
      completion-semantics problem as negation.
    - [Hilog]: a variable or computed method position ([R_any]) in the
      query or a relevant rule: demand cannot be attributed to a specific
      relation.
    - [Unsafe]: a generated rule failed the well-formedness check — a
      defensive impossibility guard, never expected in practice. *)
type fallback = Negation | Inclusion | Hilog | Unsafe

val fallback_to_string : fallback -> string

type t = {
  rules : Rule.t list;
      (** the transformed program: seeds, magic rules, guarded rules, and
          the untouched [F]-adorned rules (which keep their original
          compiled identity, so plan-cache entries survive) *)
  strat : Stratify.t;  (** stratification of [rules] *)
  n_seeds : int;  (** magic seed facts from the query's constants *)
  n_magic : int;  (** demand-propagation rules *)
  n_guarded : int;  (** rules restricted by a magic guard *)
  n_unguarded : int;  (** relevant rules kept unrestricted *)
  n_dropped : int;  (** relevant rules no demand reaches *)
  listing : string list;
      (** the adorned, transformed program rendered as PathLog source with
          section comments — what [explain --demand] prints *)
}

(** [transform store rules query] builds the demand-transformed program
    for [query]. Pure facts (empty body, no reads) are {e not} included:
    they are extensional and the caller loads them directly
    ({!Program.load_facts}). Interns magic method names into the store's
    universe but inserts no tuples. *)
val transform :
  Oodb.Store.t ->
  Rule.t list ->
  Syntax.Ast.literal list ->
  (t, fallback) result

(** Number of live magic tuples currently in the store — the size of all
    demand sets, across every transform that ran against it (the
    [magic_facts] STATS gauge). *)
val magic_fact_total : Oodb.Store.t -> int

(** Is this method name a demand-transform artefact ([magic$...])? *)
val is_magic_name : string -> bool
