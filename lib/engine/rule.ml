open Syntax.Ast
module Ir = Semantics.Ir

type t = {
  uid : int;
  source : Syntax.Ast.rule;
  origin : Syntax.Ast.rule option;
  span : Syntax.Token.span option;
  body : Ir.query;
  defines : Ir.rel list;
  reads : Ir.rel list;
  completion_reads : Ir.rel list;
  seedable : (Ir.rel * int) list;
  reads_any : bool;
  class_edges : (Oodb.Obj_id.t * Oodb.Obj_id.t) list;
}

(* Process-wide: rules are compiled once at load time, and the uid only
   needs to distinguish rules, not number them densely. *)
let next_uid = ref 0

let add_rel acc r = if List.mem r acc then acc else r :: acc

let const_obj store : reference -> Oodb.Obj_id.t option = function
  | Name n -> Some (Oodb.Store.name store n)
  | Int_lit n -> Some (Oodb.Store.int store n)
  | Str_lit s -> Some (Oodb.Store.str store s)
  | Var _ | Paren _ | Path _ | Regex _ | Filter _ | Isa _ -> None

let isa_rel store cls : Ir.rel =
  match const_obj store cls with
  | Some c -> R_isa_c c
  | None -> R_isa

let meth_rel store ~set (meth : reference) : Ir.rel =
  match meth with
  | Name n ->
    let m = Oodb.Store.name store n in
    if set then R_set m else R_scalar m
  | Int_lit n ->
    let m = Oodb.Store.int store n in
    if set then R_set m else R_scalar m
  | Str_lit s ->
    let m = Oodb.Store.str store s in
    if set then R_set m else R_scalar m
  | Var _ | Paren _ | Path _ | Regex _ | Filter _ | Isa _ -> R_any

(* Every label relation a regular path's automaton can traverse. *)
let rec regex_label_rels store acc (re : regex) =
  match re with
  | Rlit { l_sep; l_meth; _ } ->
    add_rel acc (meth_rel store ~set:(l_sep = Dotdot) l_meth)
  | Rseq rs | Ralt rs -> List.fold_left (regex_label_rels store) acc rs
  | Rstar r | Rplus r | Ropt r -> regex_label_rels store acc r

(* Relations read when a reference is evaluated. *)
let rels_of_reference store t =
  let add acc = function
    | Name _ | Int_lit _ | Str_lit _ | Var _ | Paren _ -> acc
    | Path { p_sep; p_meth; _ } ->
      add_rel acc (meth_rel store ~set:(p_sep = Dotdot) p_meth)
    | Regex { x_re; _ } -> regex_label_rels store acc x_re
    | Isa { cls; _ } -> add_rel acc (isa_rel store cls)
    | Filter { f_meth; f_rhs; _ } -> (
      match f_rhs with
      | Rscalar _ -> add_rel acc (meth_rel store ~set:false f_meth)
      | Rset_ref _ | Rset_enum _ ->
        add_rel acc (meth_rel store ~set:true f_meth)
      | Rsig_scalar _ | Rsig_set _ -> acc)
  in
  List.rev (fold_reference add [] t)

(* Relations the head may insert into. Scalar paths both read and (via
   skolemisation) define their method's relation; filters define theirs;
   class edges define isa. The whole head is walked because nested result
   molecules are asserted recursively by Head.execute. *)
let head_defines store head =
  let add acc = function
    | Name _ | Int_lit _ | Str_lit _ | Var _ | Paren _ -> acc
    | Path { p_sep = Dot; p_meth = Name "self"; p_args = []; _ } -> acc
    | Path { p_sep = Dot; p_meth; _ } ->
      add_rel acc (meth_rel store ~set:false p_meth)
    | Path { p_sep = Dotdot; _ } -> acc  (* only inside ->> rhs; no creation *)
    | Regex _ -> acc  (* rejected in heads by Wellformed (PL019) *)
    | Isa { cls; _ } -> add_rel acc (isa_rel store cls)
    | Filter { f_meth; f_rhs; _ } -> (
      match f_rhs with
      | Rscalar _ -> add_rel acc (meth_rel store ~set:false f_meth)
      | Rset_ref _ | Rset_enum _ ->
        add_rel acc (meth_rel store ~set:true f_meth)
      | Rsig_scalar _ | Rsig_set _ -> acc)
  in
  List.rev (fold_reference add [] head)

(* Scalar head paths that can create skolem (virtual) objects when their
   method application is undefined: every [.]-path except the built-in
   [self]. Variable or computed method positions yield R_any; the default
   semantics does not enumerate skolems for those (hilog_virtual=false),
   so callers typically filter R_any out. *)
let skolem_defines store head =
  let add acc = function
    | Path { p_sep = Dot; p_meth = Name "self"; p_args = []; _ } -> acc
    | Path { p_sep = Dot; p_meth; _ } ->
      add_rel acc (meth_rel store ~set:false p_meth)
    | Name _ | Int_lit _ | Str_lit _ | Var _ | Paren _
    | Path { p_sep = Dotdot; _ }
    | Regex _ | Isa _ | Filter _ ->
      acc
  in
  List.rev (fold_reference add [] head)

(* Head sub-references that are evaluated (not asserted): the set-valued
   right-hand sides of ->> filters. Their relations are reads. *)
let head_eval_reads store head =
  let add acc = function
    | Filter { f_rhs = Rset_ref s; _ } ->
      List.fold_left add_rel acc (rels_of_reference store s)
    | Name _ | Int_lit _ | Str_lit _ | Var _ | Paren _ | Path _ | Regex _
    | Isa _ | Filter _ ->
      acc
  in
  List.rev (fold_reference add [] head)

let rec atom_reads acc (a : Ir.atom) =
  match a with
  | A_isa (_, Const c) -> add_rel acc (Ir.R_isa_c c)
  | A_isa (_, V _) -> add_rel acc Ir.R_isa
  | A_scalar { meth = Const m; _ } -> add_rel acc (Ir.R_scalar m)
  | A_member { meth = Const m; _ } -> add_rel acc (Ir.R_set m)
  | A_scalar { meth = V _; _ } | A_member { meth = V _; _ } ->
    add_rel acc Ir.R_any
  | A_eq _ -> acc
  | A_subset s ->
    let acc =
      add_rel acc
        (match s.s_meth with Const m -> Ir.R_set m | V _ -> Ir.R_any)
    in
    List.fold_left atom_reads acc s.sub_atoms
  | A_neg n -> List.fold_left atom_reads acc n.n_atoms
  (* [atom_rel] reports no single relation for a regex atom; every label
     relation must count as a read here so growth of any of them
     re-triggers the rule in the semi-naive fixpoint *)
  | A_regex x -> List.fold_left add_rel acc (Ir.automaton_rels x.x_auto)

(* Relations inside set-inclusion and negation sub-queries: these are
   consulted with "is the set complete?" semantics and force
   stratification. *)
let rec atom_completions acc (a : Ir.atom) =
  match a with
  (* the star closure is a monotone least fixpoint over its label
     relations, so a regex read never forces stratification *)
  | A_isa _ | A_scalar _ | A_member _ | A_eq _ | A_regex _ -> acc
  | A_subset s ->
    let acc = List.fold_left atom_reads acc s.sub_atoms in
    List.fold_left atom_completions acc s.sub_atoms
  | A_neg n ->
    let acc = List.fold_left atom_reads acc n.n_atoms in
    List.fold_left atom_completions acc n.n_atoms

(* Class edges between two constants in the head, e.g. [manager :: employee]
   or a rule deriving a constant subclass link; the stratifier uses these as
   the static class hierarchy. *)
let head_class_edges store head =
  let add acc = function
    | Isa { recv; cls } -> (
      match (const_obj store recv, const_obj store cls) with
      | Some a, Some b -> (a, b) :: acc
      | _, _ -> acc)
    | Name _ | Int_lit _ | Str_lit _ | Var _ | Paren _ | Path _ | Regex _
    | Filter _ ->
      acc
  in
  List.rev (fold_reference add [] head)

let compile ?span ?origin store (rule : Syntax.Ast.rule) : t =
  let body = Semantics.Flatten.literals store rule.body in
  let defines = head_defines store rule.head in
  let reads =
    let acc = List.fold_left atom_reads [] body.atoms in
    List.fold_left add_rel acc (head_eval_reads store rule.head)
  in
  let completion_reads = List.fold_left atom_completions [] body.atoms in
  let seedable =
    List.mapi (fun i a -> (i, a)) body.atoms
    |> List.filter_map (fun (i, a) ->
           match (a : Ir.atom) with
           | A_isa _ -> Some (Ir.R_isa, i)
           | A_scalar { meth = Const m; _ } -> Some (Ir.R_scalar m, i)
           | A_member { meth = Const m; _ } -> Some (Ir.R_set m, i)
           | A_scalar _ | A_member _ | A_eq _ | A_subset _ | A_neg _
           | A_regex _ ->
             None)
  in
  let uid = !next_uid in
  incr next_uid;
  {
    uid;
    source = rule;
    origin;
    span;
    body;
    defines;
    reads;
    completion_reads;
    seedable;
    reads_any = List.mem Ir.R_any reads;
    class_edges = head_class_edges store rule.head;
  }
