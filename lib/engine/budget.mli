(** Cooperative evaluation budgets: wall-clock deadlines, work caps, and
    a cancellation token, checked cheaply from the solver's enumeration
    loops and at fixpoint round boundaries.

    A budget is the {e soft} counterpart of the hard divergence guards in
    {!Fixpoint.config} ([max_rounds]/[max_objects] raise {!Err.Diverged},
    a hard error): exhausting a budget raises {!Exhausted}, which the
    fixpoint engine catches and converts into a {e degraded} result — the
    sound partial model computed so far, flagged in
    {!Fixpoint.stats.degraded} — and which query evaluation propagates so
    the server can answer [ERR TIMEOUT] / [ERR CANCELLED] mid-flight.

    The token is an [Atomic.t] flag, so cancellation works across
    domains: with [jobs > 1] every {!Dpool} worker polls it from inside
    its solver task and between task claims. *)

type reason =
  | Timeout  (** the wall-clock deadline passed *)
  | Cancelled  (** the cancellation token was set *)
  | Derivations  (** the rule-firing cap was hit *)
  | Objects  (** the universe-cardinality cap was hit *)

exception Exhausted of reason

type t

(** [create ()] is an unlimited budget carrying only a cancellation
    token. [deadline_at] is an absolute [Unix.gettimeofday] instant;
    [deadline_in] is relative to now ([deadline_at] wins when both are
    given). [cancel] shares an existing token (e.g. one server-wide
    shutdown flag across all in-flight requests). Caps bound the work of
    one evaluation: [max_derivations] caps rule firings, [max_objects]
    caps universe cardinality (skolem creation). *)
val create :
  ?deadline_at:float ->
  ?deadline_in:float ->
  ?cancel:bool Atomic.t ->
  ?max_derivations:int ->
  ?max_objects:int ->
  unit ->
  t

(** Set the cancellation token; every evaluation sharing it observes the
    flag at its next poll. Idempotent, safe from any thread or domain. *)
val cancel : t -> unit

val cancelled : t -> bool

val token : t -> bool Atomic.t

(** Raise {!Exhausted} if the token is set or the deadline has passed.
    The solver's poll: one atomic load plus (when a deadline is armed)
    one [gettimeofday]. *)
val check : t -> unit

(** {!check} plus the work caps; the fixpoint's round-boundary check. *)
val check_caps : t -> derivations:int -> objects:int -> unit

(** Seconds until the deadline (negative when past); [None] when the
    budget has no deadline. *)
val remaining_s : t -> float option

(** ["timeout"], ["cancelled"], ["derivations"], ["objects"]. *)
val reason_label : reason -> string

val pp_reason : Format.formatter -> reason -> unit
