(** Stratification (section 6 of the paper).

    A rule whose body contains a set-inclusion filter with a set-valued
    reference — [... <- X\[friends ->> p1..assistants\]] — or a negated
    literal must only run once the relations that sub-reference reads are
    fully computed. We build the dependency graph over relations (an edge
    [D -> R] whenever a rule defining [D] reads [R], marked {e completion}
    when the read needs the full extension), condense it into strongly
    connected components, and reject the program if a completion edge lies
    inside a component. Strata are numbered so that completion edges
    strictly descend.

    [R_any] (variable or computed method positions, e.g. the generic
    [kids.tc] rules) is handled conservatively: a rule defining [R_any] may
    define anything, a rule reading [R_any] may read anything, and a
    completion read of [R_any] is rejected outright.

    Class membership is refined per named class ([R_isa_c]): negating
    [X : hasKids] while deriving [X : leaf] is stratifiable. A membership
    insert into class [c] also feeds every class above [c]; the hierarchy
    used is the {e static} one — constant-to-constant class edges visible
    in rule heads. Class edges created at runtime between objects that are
    only bound by variables (meta-programming on the hierarchy) escape this
    approximation, as they do in every practical stratification. *)

type t = {
  strata : Rule.t list array;  (** rules grouped by stratum, ascending *)
  rule_stratum : (Rule.t * int) list;
}

val compute : Oodb.Store.t -> Rule.t list -> t
(** @raise Err.Unstratifiable *)

(** {2 Relation dependency graph}

    The graph [compute] stratifies over, exposed so the static-analysis
    layer can reuse it instead of rebuilding its own. *)

type graph

val dependency_graph : Rule.t list -> graph
(** @raise Err.Unstratifiable on a completion read of [R_any]. *)

val graph_rels : graph -> Semantics.Ir.rel array
(** the graph's relation nodes; edge endpoints index into this array *)

val graph_edges : graph -> (int * int * bool) list
(** edges [(definer, read, completion)] over {!graph_rels} indexes *)

val expand_define : graph -> Semantics.Ir.rel -> Semantics.Ir.rel list
(** what inserting into a relation can affect (class hierarchy included) *)

val static_ancestors : Rule.t list -> Oodb.Obj_id.t -> Oodb.Obj_id.Set.t
(** static superclasses of a class: the constant-to-constant hierarchy
    visible in rule heads, transitively closed *)

val live_rules : Rule.t list -> goals:Semantics.Ir.rel list -> Rule.t list
(** Rules transitively relevant to the goal relations, by class-normalised
    backward reachability over defines/reads. Returns all rules when a goal
    (or a reached read) is [R_any]. Skipping the complement is sound:
    [Rule.t.reads] includes negated and inclusion-checked relations. *)
