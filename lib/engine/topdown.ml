module Ir = Semantics.Ir
module Store = Oodb.Store
module Set = Oodb.Obj_id.Set

type stats = {
  goals : int;
  answers : int;
  passes : int;
}

(* ------------------------------------------------------------------ *)
(* The flat-headed fragment                                            *)

type rel_key = {
  is_set : bool;
  meth : Oodb.Obj_id.t;
  arity : int;  (* number of extra arguments *)
}

type head_shape = {
  h_key : rel_key;
  h_terms : Ir.term list;  (* recv :: args @ [res], over body slots *)
}

type flat_rule = {
  rule : Rule.t;
  head : head_shape;
}

let term_of_simple store (body : Ir.query) (r : Syntax.Ast.reference) :
    Ir.term option =
  match r with
  | Name n -> Some (Const (Store.name store n))
  | Int_lit n -> Some (Const (Store.int store n))
  | Str_lit s -> Some (Const (Store.str store s))
  | Var v ->
    Option.map (fun slot -> Ir.V slot) (List.assoc_opt v body.named)
  | Paren _ | Path _ | Regex _ | Filter _ | Isa _ -> None

let atoms_supported atoms =
  List.for_all
    (fun (a : Ir.atom) ->
      match a with
      | A_isa _ | A_eq _ -> true
      | A_scalar { meth = Const _; _ } | A_member { meth = Const _; _ } ->
        true
      | A_scalar { meth = V _; _ } | A_member { meth = V _; _ } -> false
      | A_subset _ | A_neg _ | A_regex _ -> false)
    atoms

let flat_head store (rule : Rule.t) : head_shape option =
  match rule.source.head with
  | Filter { f_recv; f_meth; f_args; f_rhs } -> (
    let recv = term_of_simple store rule.body f_recv in
    let meth =
      match f_meth with
      | Name n -> Some (Store.name store n)
      | _ -> None
    in
    let args =
      List.fold_left
        (fun acc a ->
          match (acc, term_of_simple store rule.body a) with
          | Some acc, Some t -> Some (t :: acc)
          | _, _ -> None)
        (Some []) f_args
    in
    let result =
      match f_rhs with
      | Rscalar r -> Option.map (fun t -> (false, t)) (term_of_simple store rule.body r)
      | Rset_enum [ r ] ->
        Option.map (fun t -> (true, t)) (term_of_simple store rule.body r)
      | Rset_enum _ | Rset_ref _ | Rsig_scalar _ | Rsig_set _ -> None
    in
    match (recv, meth, args, result) with
    | Some recv, Some meth, Some rev_args, Some (is_set, res) ->
      let args = List.rev rev_args in
      Some
        {
          h_key = { is_set; meth; arity = List.length args };
          h_terms = (recv :: args) @ [ res ];
        }
    | _ -> None)
  | Name _ | Int_lit _ | Str_lit _ | Var _ | Paren _ | Path _ | Regex _
  | Isa _ ->
    None

let compile_fragment store (rules : Rule.t list) : flat_rule list option =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | (r : Rule.t) :: rest ->
      if r.source.body = [] then go acc rest  (* facts are pre-loaded *)
      else if not (atoms_supported r.body.atoms) then None
      else (
        match flat_head store r with
        | Some head -> go ({ rule = r; head } :: acc) rest
        | None -> None)
  in
  go [] rules

(* ------------------------------------------------------------------ *)
(* Tabling                                                             *)

type goal = rel_key * Oodb.Obj_id.t option list

type table = {
  mutable tuples : Oodb.Obj_id.t list list;  (* newest first *)
  seen : (Oodb.Obj_id.t list, unit) Hashtbl.t;
}

type state = {
  store : Store.t;
  by_rel : (rel_key, flat_rule list) Hashtbl.t;
  tables : (goal, table) Hashtbl.t;
  mutable changed : bool;
  mutable passes : int;
}

let matches_pattern pattern tuple =
  List.for_all2
    (fun pat v ->
      match pat with Some x -> Oodb.Obj_id.equal x v | None -> true)
    pattern tuple

(* EDB tuples of a relation matching a pattern, from the store. *)
let edb_tuples st key pattern =
  let bucket =
    if key.is_set then Store.set_bucket st.store key.meth
    else Store.scalar_bucket st.store key.meth
  in
  Oodb.Vec.fold
    (fun acc (e : Store.mentry) ->
      if (not (Store.live e)) || List.length e.args <> key.arity then acc
      else
        let tuple = (e.recv :: e.args) @ [ e.res ] in
        if matches_pattern pattern tuple then tuple :: acc else acc)
    [] bucket

let is_idb st key = Hashtbl.mem st.by_rel key

(* Create (and EDB-seed) the table of a goal if new. *)
let ensure_table st (goal : goal) =
  match Hashtbl.find_opt st.tables goal with
  | Some t -> t
  | None ->
    let t = { tuples = []; seen = Hashtbl.create 16 } in
    Hashtbl.add st.tables goal t;
    let key, pattern = goal in
    List.iter
      (fun tuple ->
        if not (Hashtbl.mem t.seen tuple) then begin
          Hashtbl.add t.seen tuple ();
          t.tuples <- tuple :: t.tuples
        end)
      (edb_tuples st key pattern);
    st.changed <- true;
    t

let add_answer st t tuple =
  if not (Hashtbl.mem t.seen tuple) then begin
    Hashtbl.add t.seen tuple ();
    t.tuples <- tuple :: t.tuples;
    st.changed <- true
  end

(* ------------------------------------------------------------------ *)
(* Body evaluation with table consults                                 *)

let deref binding = function
  | Ir.Const o -> Some o
  | Ir.V i -> binding.(i)

let bind binding t v k =
  match t with
  | Ir.Const c -> if Oodb.Obj_id.equal c v then k ()
  | Ir.V i -> (
    match binding.(i) with
    | Some x -> if Oodb.Obj_id.equal x v then k ()
    | None ->
      binding.(i) <- Some v;
      k ();
      binding.(i) <- None)

let rec bind_list binding ts vs k =
  match (ts, vs) with
  | [], [] -> k ()
  | t :: ts', v :: vs' -> bind binding t v (fun () -> bind_list binding ts' vs' k)
  | [], _ :: _ | _ :: _, [] -> ()

let self_id st = Store.name st.store "self"

(* Enumerate matches of one method atom: table answers for IDB relations
   (creating the sub-goal on first use), store tuples otherwise. *)
let eval_app st binding which (app : Ir.app) k =
  match deref binding app.meth with
  | None -> ()  (* excluded by atoms_supported *)
  | Some m when Oodb.Obj_id.equal m (self_id st) && app.args = [] -> (
    if which = `Set then ()  (* no set-valued extension *)
    else
      match (deref binding app.recv, deref binding app.res) with
      | Some r, _ -> bind binding app.res r k
      | None, Some r -> bind binding app.recv r k
      | None, None -> ())
  | Some m ->
    let key =
      { is_set = (which = `Set); meth = m; arity = List.length app.args }
    in
    let terms = (app.recv :: app.args) @ [ app.res ] in
    let try_tuple tuple = bind_list binding terms tuple k in
    if is_idb st key then begin
      let pattern = List.map (deref binding) terms in
      let t = ensure_table st (key, pattern) in
      List.iter try_tuple t.tuples
    end
    else List.iter try_tuple (edb_tuples st key (List.map (deref binding) terms))

let eval_isa st binding o c k =
  match (deref binding o, deref binding c) with
  | Some uo, Some uc -> if Store.is_member st.store uo uc then k ()
  | Some uo, None ->
    Set.iter (fun uc -> bind binding c uc k) (Store.classes_of st.store uo)
  | None, Some uc ->
    Set.iter (fun uo -> bind binding o uo k) (Store.members st.store uc)
  | None, None ->
    let sources = ref Set.empty in
    Oodb.Vec.iter
      (fun (e : Store.ientry) ->
        if Store.isa_live e then sources := Set.add e.i_sub !sources)
      (Store.isa_log st.store);
    Set.iter
      (fun uo ->
        bind binding o uo (fun () ->
            Set.iter
              (fun uc -> bind binding c uc k)
              (Store.classes_of st.store uo)))
      !sources

let rec eval_atoms st binding atoms k =
  match atoms with
  | [] -> k ()
  | atom :: rest ->
    let continue () = eval_atoms st binding rest k in
    (match (atom : Ir.atom) with
    | A_scalar app -> eval_app st binding `Scalar app continue
    | A_member app -> eval_app st binding `Set app continue
    | A_isa (o, c) -> eval_isa st binding o c continue
    | A_eq (a, b) -> (
      match (deref binding a, deref binding b) with
      | Some x, Some y -> if Oodb.Obj_id.equal x y then continue ()
      | Some x, None -> bind binding b x continue
      | None, Some y -> bind binding a y continue
      | None, None -> ())
    (* filtered out by [atoms_supported]; unreachable for qualified rules *)
    | A_subset _ | A_neg _ | A_regex _ -> ())

(* One evaluation pass of every rule producing [goal]'s relation, head
   bound to the goal pattern. *)
let eval_goal st ((key, pattern) as goal) =
  let t = ensure_table st goal in
  List.iter
    (fun { rule; head } ->
      let binding = Array.make rule.body.nvars None in
      let rec bind_head terms pats k =
        match (terms, pats) with
        | [], [] -> k ()
        | term :: ts, pat :: ps -> (
          match pat with
          | Some v -> bind binding term v (fun () -> bind_head ts ps k)
          | None -> bind_head ts ps k)
        | [], _ :: _ | _ :: _, [] -> ()
      in
      bind_head head.h_terms pattern (fun () ->
          eval_atoms st binding rule.body.atoms (fun () ->
              match
                List.fold_left
                  (fun acc term ->
                    match (acc, deref binding term) with
                    | Some acc, Some v -> Some (v :: acc)
                    | _, _ -> None)
                  (Some []) head.h_terms
              with
              | Some rev_tuple ->
                let tuple = List.rev rev_tuple in
                if matches_pattern pattern tuple then add_answer st t tuple
              | None -> ())))
    (Option.value ~default:[] (Hashtbl.find_opt st.by_rel key))

(* ------------------------------------------------------------------ *)

let query store rules (q : Ir.query) =
  let constrained_slots =
    List.concat_map Ir.atom_vars q.atoms |> List.sort_uniq Int.compare
  in
  if
    (not (atoms_supported q.atoms))
    || List.exists
         (fun (_, slot) -> not (List.mem slot constrained_slots))
         q.named
  then None
  else
    match compile_fragment store rules with
    | None -> None
    | Some flat ->
      let by_rel = Hashtbl.create 16 in
      List.iter
        (fun fr ->
          let cur =
            Option.value ~default:[] (Hashtbl.find_opt by_rel fr.head.h_key)
          in
          Hashtbl.replace by_rel fr.head.h_key (cur @ [ fr ]))
        flat;
      let st =
        { store; by_rel; tables = Hashtbl.create 64; changed = true;
          passes = 0 }
      in
      let solutions = Hashtbl.create 64 in
      let rows = ref [] in
      (* iterate: evaluate the query (creating goals on demand) and every
         tabled goal, until the table set is stable *)
      while st.changed do
        st.changed <- false;
        st.passes <- st.passes + 1;
        let binding = Array.make q.nvars None in
        eval_atoms st binding q.atoms (fun () ->
            let row =
              List.map
                (fun (_, slot) ->
                  match binding.(slot) with
                  | Some o -> o
                  | None -> -1 (* unbound named var: unsupported pattern *))
                q.named
            in
            if (not (List.mem (-1) row)) && not (Hashtbl.mem solutions row)
            then begin
              Hashtbl.add solutions row ();
              rows := row :: !rows;
              st.changed <- true
            end);
        (* snapshot: eval_goal may create new tables *)
        let goals = Hashtbl.fold (fun g _ acc -> g :: acc) st.tables [] in
        List.iter (eval_goal st) goals
      done;
      let answers =
        Hashtbl.fold (fun _ t acc -> acc + List.length t.tuples) st.tables 0
      in
      Some
        ( List.rev !rows,
          { goals = Hashtbl.length st.tables; answers; passes = st.passes } )
