type t =
  | F_isa of Oodb.Obj_id.t * Oodb.Obj_id.t
  | F_scalar of app
  | F_set of app

and app = {
  meth : Oodb.Obj_id.t;
  recv : Oodb.Obj_id.t;
  args : Oodb.Obj_id.t list;
  res : Oodb.Obj_id.t;
}

let equal (a : t) b = a = b
let hash = Hashtbl.hash

let pp u ppf fact =
  let obj = Oodb.Universe.pp_obj u in
  let pp_args ppf = function
    | [] -> ()
    | args ->
      Format.fprintf ppf "@@(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           obj)
        args
  in
  match fact with
  | F_isa (o, c) -> Format.fprintf ppf "%a : %a" obj o obj c
  | F_scalar { meth; recv; args; res } ->
    Format.fprintf ppf "%a[%a%a -> %a]" obj recv obj meth pp_args args obj
      res
  | F_set { meth; recv; args; res } ->
    Format.fprintf ppf "%a[%a%a ->> {%a}]" obj recv obj meth pp_args args obj
      res

(* Resolve a ground reference to the object it denotes against the current
   store, without creating anything: names/literals directly, paths by
   lookup (including existing skolems). *)
let rec resolve store (r : Syntax.Ast.reference) : Oodb.Obj_id.t option =
  match r with
  | Name n -> Some (Oodb.Store.name store n)
  | Int_lit n -> Some (Oodb.Store.int store n)
  | Str_lit s -> Some (Oodb.Store.str store s)
  | Paren r' -> resolve store r'
  | Path { p_recv; p_sep = Dot; p_meth; p_args } -> (
    match (resolve store p_recv, resolve store p_meth) with
    | Some recv, Some meth -> (
      match
        List.fold_left
          (fun acc a ->
            match (acc, resolve store a) with
            | Some acc, Some o -> Some (o :: acc)
            | _, _ -> None)
          (Some []) p_args
      with
      | Some rev_args ->
        Oodb.Store.scalar_lookup store ~meth ~recv ~args:(List.rev rev_args)
      | None -> None)
    | _, _ -> None)
  | Var _ | Path { p_sep = Dotdot; _ } | Regex _ | Filter _ | Isa _ -> None

let of_reference store (r : Syntax.Ast.reference) : t option =
  match r with
  | Isa { recv; cls } -> (
    match (resolve store recv, resolve store cls) with
    | Some o, Some c -> Some (F_isa (o, c))
    | _, _ -> None)
  | Filter { f_recv; f_meth; f_args; f_rhs } -> (
    let positions rhs =
      match (resolve store f_recv, resolve store f_meth, rhs) with
      | Some recv, Some meth, Some res -> (
        match
          List.fold_left
            (fun acc a ->
              match (acc, resolve store a) with
              | Some acc, Some o -> Some (o :: acc)
              | _, _ -> None)
            (Some []) f_args
        with
        | Some rev_args ->
          Some (meth, recv, List.rev rev_args, res)
        | None -> None)
      | _, _, _ -> None
    in
    match f_rhs with
    | Rscalar rhs -> (
      match positions (resolve store rhs) with
      | Some (meth, recv, args, res) ->
        Some (F_scalar { meth; recv; args; res })
      | None -> None)
    | Rset_enum [ rhs ] -> (
      match positions (resolve store rhs) with
      | Some (meth, recv, args, res) -> Some (F_set { meth; recv; args; res })
      | None -> None)
    | Rset_enum _ | Rset_ref _ | Rsig_scalar _ | Rsig_set _ -> None)
  | Name _ | Int_lit _ | Str_lit _ | Var _ | Paren _ | Path _ | Regex _ ->
    None
