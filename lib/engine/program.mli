(** The user-facing engine API: load a PathLog program, evaluate it to its
    minimal model, answer queries.

    A program is a sequence of statements: facts, rules, signature
    declarations ([c\[m => r\]], [c\[m =>> r\]]) and queries ([?- ...]).
    Loading parses, checks well-formedness (Definition 3 plus head and
    safety conditions), compiles rules, and stratifies. {!run} evaluates to
    the minimal model; {!query} / {!query_string} answer ad-hoc queries
    against the current store. *)

type t

exception Invalid of string
(** Parse error, ill-formed reference, unsafe rule, bad signature
    declaration — with a human-readable message. *)

type answer = {
  columns : string list;  (** query variables, first-occurrence order *)
  rows : Oodb.Obj_id.t list list;  (** distinct bindings *)
}

val create :
  ?config:Fixpoint.config -> Syntax.Ast.statement list -> t

(** As {!create}, with a source span per statement (diagnostics anchor on
    them); {!of_string} uses this. *)
val create_spanned :
  ?config:Fixpoint.config ->
  (Syntax.Ast.statement * Syntax.Token.span option) list -> t

val of_string : ?config:Fixpoint.config -> string -> t

(** Load one extracted signature declaration (see
    {!Syntax.Wellformed.signature_of_statement}) into a signature table.
    Exposed for the static-analysis driver, which collects diagnostics
    instead of stopping at the first bad statement.
    @raise Invalid when a declaration names a non-ground reference *)
val load_signature :
  Oodb.Store.t ->
  Oodb.Signature.t ->
  Syntax.Ast.reference * Syntax.Ast.reference * Syntax.Ast.reference list
  * Syntax.Ast.reference * Syntax.Scalarity.t ->
  unit

val store : t -> Oodb.Store.t

(** The fixpoint configuration the program was created with (incremental
    maintenance re-enters the fixpoint with it). *)
val config : t -> Fixpoint.config

(** Install (or clear) statically predicted relation cardinalities: every
    later evaluation and {!explain} ranks join orders from them instead
    of the store heuristic. Sound to flip at any time — estimates change
    plan ranking, never answers, and compiled plans are cached under the
    estimator's epoch. *)
val set_estimates : t -> Semantics.Solve.estimator option -> unit

val universe : t -> Oodb.Universe.t

val rules : t -> Rule.t list

val signatures : t -> Oodb.Signature.t

(** Queries that appeared in the program text, in order. *)
val embedded_queries : t -> Syntax.Ast.literal list list

(** Stratum of each rule (diagnostics; experiment E8). *)
val strata : t -> Rule.t list array

(** Evaluate to the minimal model. Idempotent: a second call finds nothing
    new to derive. [budget] (deadline, cancellation, work caps) overrides
    the one in the program's config for this run; a budget-terminated run
    leaves the sound partial model in the store, records the reason (see
    {!degraded}), and still returns normally. *)
val run : ?budget:Budget.t -> t -> Fixpoint.stats

(** [Some r] when the latest {!run} was cut short by its budget: the
    model is partial (answers are a sound subset); cleared when a later
    run reaches the fixpoint. *)
val degraded : t -> Budget.reason option

(** Rules transitively relevant to the program's embedded queries (all
    rules when it has none); see {!Stratify.live_rules}. *)
val live_rules : t -> Rule.t list

(** Evaluate with dead rules skipped: only {!live_rules} run (via
    {!Fixpoint.config.rule_filter}). Embedded-query answers always agree
    with {!run} (property-tested); relations only dead rules feed are not
    materialised. Returns the stats and the number of rules skipped. *)
val run_live : t -> Fixpoint.stats * int

(** Answer a query (the program should normally have been {!run} first).
    A query with no variables yields one empty row if entailed, no rows
    otherwise. [budget] bounds the enumeration itself: exhaustion raises
    {!Budget.Exhausted} mid-query — the server's mid-flight
    [ERR TIMEOUT]/[ERR CANCELLED] path. *)
val query : ?budget:Budget.t -> t -> Syntax.Ast.literal list -> answer

(** Parse and answer, e.g. [query_string p "?- X : employee."] (the leading
    [?-] and trailing [.] are optional). *)
val query_string : ?budget:Budget.t -> t -> string -> answer

(** Parse query text to literals without evaluating (the parsing half of
    {!query_string}; admission control estimates costs from these).
    @raise Invalid on a parse error. *)
val parse_query : string -> Syntax.Ast.literal list

(** Run every embedded query. *)
val run_queries : t -> (Syntax.Ast.literal list * answer) list

(** Render an answer row / table using the program's universe. *)
val row_to_string : t -> Oodb.Obj_id.t list -> string

val pp_answer : t -> Format.formatter -> answer -> unit

(** Check the store against the program's signature declarations. *)
val check_types :
  t -> mode:[ `Lenient | `Strict ] -> Oodb.Signature.violation list

(** Static type lint: check rule heads against signatures without running
    the program (see {!Typecheck}). *)
val lint_types : t -> Typecheck.warning list

(** Insert one ground fact into the store (virtual objects created as in
    rule heads); returns the number of new tuples. Call {!run} afterwards
    to re-derive the consequences — evaluation is monotone, so this is
    sound incremental maintenance.
    @raise Invalid on ill-formed or non-ground facts *)
val add_fact : t -> Syntax.Ast.reference -> int

val add_fact_string : t -> string -> int

(** The computed model as a PathLog fact program. Reloading the dump with
    {!of_string} rebuilds an isomorphic store: virtual objects print as the
    paths that denote them and re-skolemise deterministically. *)
val dump_model : t -> string

(** The execution plan the solver would follow for a query; one line per
    flattened atom (see {!Semantics.Solve.explain}). *)
val explain : t -> Syntax.Ast.literal list -> string list

val explain_string : t -> string -> string list

(** Derivation provenance recorded during {!run}. *)
val provenance : t -> Provenance.t

(** Demand-focused evaluation: instead of materialising the whole model,
    run only the rules transitively relevant to the query's relations
    (classic rule-relevance restriction — weaker than full magic sets but
    sound and often sufficient), then answer. Returns the answer, the
    fixpoint statistics of the focused run, and the number of rules it
    considered. Answers always agree with {!run} + {!query}
    (property-tested). *)
val query_focused :
  t -> Syntax.Ast.literal list -> answer * Fixpoint.stats * int

(** Execute the program's fact statements (empty-body rules) into the
    store without running any rule; idempotent. Demand-driven evaluation
    loads the extensional database this way and derives the rest from the
    query. *)
val load_facts : t -> unit

(** What a demand-driven query did: the transform shape (or the fallback
    that prevented it), the fixpoint statistics of the demanded run, and
    the store's live magic-tuple count afterwards. *)
type demand_report = {
  d_fallback : Demand.fallback option;
      (** [Some _]: the transform was unsound for this program/query and
          full materialisation ran instead *)
  d_stats : Fixpoint.stats;
  d_seeds : int;
  d_magic_rules : int;
  d_guarded : int;
  d_unguarded : int;
  d_dropped : int;
  d_magic_facts : int;
}

(** Demand-driven answering: magic-sets transform seeded by the query's
    bound receivers (see {!Demand}), facts loaded extensionally, then a
    semi-naive fixpoint over the demanded fragment only. Falls back to
    {!run} when the transform is unsound (negation, inclusion, hilog).
    Answers always agree with {!run} + {!query} (property-tested at jobs
    1 and 4). [budget] bounds the demanded run {e and} the final
    enumeration; a budget-cut run is flagged in {!degraded} and the
    report's stats. *)
val query_demand :
  ?budget:Budget.t ->
  t ->
  Syntax.Ast.literal list ->
  answer * demand_report

val query_demand_string :
  ?budget:Budget.t -> t -> string -> answer * demand_report

(** The adorned, magic-transformed program for a query, rendered as
    PathLog source with section comments — seeds, magic rules, guarded
    rules, unguarded rules, and the bound-receiver plan of each guarded
    body. A single comment line explaining the fallback when the
    transform declines. *)
val explain_demand : t -> Syntax.Ast.literal list -> string list

val explain_demand_string : t -> string -> string list

(** Goal-directed tabled evaluation for the flat-headed fragment (see
    {!Topdown}): answers point queries without materialising the model,
    propagating the query's constants into recursion. Loads the program's
    fact statements into the store (idempotent), then tables sub-goals.
    [None] when a rule is outside the fragment — fall back to
    {!query_focused} or {!run}+{!query}. *)
val query_topdown :
  t -> Syntax.Ast.literal list -> (answer * Topdown.stats) option

(** The proof tree of a derived or extensional fact ([None] if the store
    does not contain it). The reference must be ground and fact shaped:
    [o : c], [o\[m -> r\]] or [o\[m ->> {r}\]]; paths are resolved against
    the store.
    @raise Invalid on other shapes *)
val why :
  ?budget:Budget.t -> t -> Syntax.Ast.reference -> Provenance.proof option
(** [budget] bounds the proof reconstruction (it replays rule bodies);
    exhaustion raises {!Budget.Exhausted}. *)

val why_string : ?budget:Budget.t -> t -> string -> Provenance.proof option

(** The source statements the program was created from. *)
val statements : t -> Syntax.Ast.statement list

(** Rebuild with edited source: statements matching [retract] dropped,
    [add] appended; the result is freshly evaluated. The store is
    append-only (semi-naive deltas rely on it), so retraction is honest
    recomputation rather than in-place deletion. *)
val rebuild :
  ?add:Syntax.Ast.statement list ->
  ?retract:(Syntax.Ast.statement -> bool) ->
  t -> t

(** Model difference, as rendered fact lines (stores differ, ids do not
    transfer): [(added, removed)]. *)
val diff_models : before:t -> after:t -> string list * string list

(** Evaluate the effect of an edit without committing to it: which model
    facts would appear, which would vanish. *)
val what_if :
  ?add:Syntax.Ast.statement list ->
  ?retract:(Syntax.Ast.statement -> bool) ->
  t -> string list * string list

(** Model check: do all rules hold in the current store? Brute force over
    variable valuations — tests and small programs only. *)
val verify_model : t -> (unit, Syntax.Ast.rule * string) result
