(** Evaluation-time errors shared by the engine modules. *)

type functional_conflict = {
  c_meth : Oodb.Obj_id.t;
  c_recv : Oodb.Obj_id.t;
  c_args : Oodb.Obj_id.t list;
  existing : Oodb.Obj_id.t;
  proposed : Oodb.Obj_id.t;
  rule : Syntax.Ast.rule option;  (** the rule whose head caused it *)
}

exception Functional_conflict of functional_conflict
(** Two derivations assign different results to the same scalar method
    application; scalar methods interpret partial {e functions}
    (section 3), so this is an inconsistent program. *)

exception Isa_cycle of Oodb.Obj_id.t * Oodb.Obj_id.t
(** Deriving this class edge would close a hierarchy cycle, breaking the
    antisymmetry of the partial order [<=_U]. *)

exception Reserved_self
(** A rule tries to define the built-in method [self]. *)

type unstratifiable = {
  u_message : string;  (** the core message, no rule text embedded *)
  u_rule : Syntax.Ast.rule option;  (** offending rule, when one is known *)
}

exception Unstratifiable of unstratifiable
(** A set-inclusion body filter or a negation depends recursively on what
    it needs completed (section 6). *)

exception Diverged of string
(** Virtual-object creation exceeded the configured object or iteration
    budget; the program most likely has an infinite minimal model. *)

(** Raise {!Unstratifiable} from a format string, optionally naming the
    offending rule. *)
val unstratifiable :
  ?rule:Syntax.Ast.rule -> ('a, Format.formatter, unit, 'b) format4 -> 'a

val pp_functional_conflict :
  Oodb.Store.t -> Format.formatter -> functional_conflict -> unit

(** Render any of the above exceptions; [None] for other exceptions. *)
val message : Oodb.Store.t -> exn -> string option

(** {2 Process exit codes}

    Shared by every [pathlog] subcommand:
    {ul
    {- {!exit_ok} (0) — success.}
    {- {!exit_runtime} (1) — the program loaded but evaluation failed:
       scalar conflict, hierarchy cycle, divergence budget exceeded.}
    {- {!exit_load} (2) — the program did not load: lexing or parse error,
       ill-formed rule or query, bad signature declaration.}
    {- {!exit_analysis} (3) — static analysis refused the program:
       [check] found diagnostics at or above the [--deny] level, or
       [lint] / [run --types] reported issues.}} *)

val exit_ok : int
val exit_runtime : int
val exit_load : int
val exit_analysis : int
