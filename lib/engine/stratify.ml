module Ir = Semantics.Ir

type t = {
  strata : Rule.t list array;
  rule_stratum : (Rule.t * int) list;
}

module Rel_map = Map.Make (struct
  type t = Ir.rel

  let compare = Ir.compare_rel
end)

module Obj_set = Oodb.Obj_id.Set

(* Static class hierarchy: the constant-to-constant class edges asserted by
   rule heads (facts included). Inserting a membership into class [c] also
   extends the membership of every class above [c], so a rule defining
   [R_isa_c c] defines the ancestors' relations too. Class edges created at
   runtime between objects bound by variables escape this approximation;
   see the mli. *)
let static_ancestors rules =
  let parents = Hashtbl.create 16 in
  List.iter
    (fun (r : Rule.t) ->
      List.iter
        (fun (a, b) ->
          let cur =
            Option.value ~default:Obj_set.empty (Hashtbl.find_opt parents a)
          in
          Hashtbl.replace parents a (Obj_set.add b cur))
        r.class_edges)
    rules;
  let memo = Hashtbl.create 16 in
  let rec anc c =
    match Hashtbl.find_opt memo c with
    | Some s -> s
    | None ->
      Hashtbl.add memo c Obj_set.empty;
      (* cycle guard *)
      let direct =
        Option.value ~default:Obj_set.empty (Hashtbl.find_opt parents c)
      in
      let s =
        Obj_set.fold
          (fun p acc -> Obj_set.union acc (Obj_set.add p (anc p)))
          direct Obj_set.empty
      in
      Hashtbl.replace memo c s;
      s
  in
  anc

(* Dependency graph over relation nodes. *)
type graph = {
  nodes : Ir.rel array;
  index : int Rel_map.t;
  mutable edges : (int * int * bool) list;  (* from, to, completion *)
  mutable expand_define : Ir.rel -> Ir.rel list;
}

let node_of g r = Rel_map.find r g.index

let graph_rels g = g.nodes
let graph_edges g = g.edges
let expand_define g r = g.expand_define r

let build_graph (rules : Rule.t list) =
  let anc = static_ancestors rules in
  let with_ancestors r =
    match (r : Ir.rel) with
    | R_isa_c c ->
      r :: List.map (fun c' -> Ir.R_isa_c c') (Obj_set.elements (anc c))
    | R_isa | R_scalar _ | R_set _ | R_any -> [ r ]
  in
  let all_rels =
    List.concat_map
      (fun (r : Rule.t) ->
        List.concat_map with_ancestors
          (r.defines @ r.reads @ r.completion_reads))
      rules
    |> List.sort_uniq Ir.compare_rel
  in
  let nodes = Array.of_list all_rels in
  let index =
    Array.to_seq nodes |> Seq.mapi (fun i r -> (r, i)) |> Rel_map.of_seq
  in
  let g = { nodes; index; edges = []; expand_define = (fun r -> [ r ]) } in
  let isa_nodes =
    List.filter
      (function Ir.R_isa | Ir.R_isa_c _ -> true
        | Ir.R_scalar _ | Ir.R_set _ | Ir.R_any -> false)
      all_rels
  in
  let has_any = Rel_map.mem Ir.R_any index in
  (* what a relation can stand for when read *)
  let expand_read r =
    match (r : Ir.rel) with
    | R_any when has_any -> Array.to_list g.nodes
    | R_isa -> isa_nodes
    | R_isa_c _ | R_scalar _ | R_set _ | R_any -> [ r ]
  in
  (* what inserting into a relation can affect *)
  let expand_define r =
    match (r : Ir.rel) with
    | R_any when has_any -> Array.to_list g.nodes
    | R_isa -> isa_nodes
    | R_isa_c _ -> with_ancestors r
    | R_scalar _ | R_set _ | R_any -> [ r ]
  in
  List.iter
    (fun (rule : Rule.t) ->
      List.iter
        (fun r ->
          if Ir.equal_rel r Ir.R_any then
            Err.unstratifiable ~rule:rule.source
              "completion-dependency through a variable or computed method \
               position")
        rule.completion_reads;
      let defined = List.concat_map expand_define rule.defines in
      List.iter
        (fun d ->
          let di = node_of g d in
          List.iter
            (fun r ->
              List.iter
                (fun r' -> g.edges <- (di, node_of g r', false) :: g.edges)
                (expand_read r))
            rule.reads;
          List.iter
            (fun r ->
              List.iter
                (fun r' -> g.edges <- (di, node_of g r', true) :: g.edges)
                (expand_read r))
            rule.completion_reads)
        defined)
    rules;
  g.expand_define <- expand_define;
  g

let dependency_graph = build_graph

(* Tarjan's strongly connected components. *)
let sccs g =
  let n = Array.length g.nodes in
  let succ = Array.make n [] in
  List.iter (fun (i, j, compl) -> succ.(i) <- (j, compl) :: succ.(i)) g.edges;
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let comp_of = Array.make n (-1) in
  let comp_count = ref 0 in
  let rec strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun (w, _) ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      succ.(v);
    if lowlink.(v) = index.(v) then begin
      let c = !comp_count in
      incr comp_count;
      let rec pop () =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          comp_of.(w) <- c;
          if w <> v then pop ()
        | [] -> assert false
      in
      pop ()
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  (comp_of, !comp_count, succ)

let compute store (rules : Rule.t list) : t =
  match rules with
  | [] -> { strata = [| [] |]; rule_stratum = [] }
  | _ ->
    let g = build_graph rules in
    let expand_define = g.expand_define in
    let comp_of, ncomp, succ = sccs g in
    (* completion edge inside one component => not stratifiable *)
    Array.iteri
      (fun v edges ->
        List.iter
          (fun (w, compl) ->
            if compl && comp_of.(v) = comp_of.(w) then
              Err.unstratifiable
                "%a depends on the completion of %a, which depends back on \
                 it"
                (Ir.pp_rel (Oodb.Store.universe store))
                g.nodes.(v)
                (Ir.pp_rel (Oodb.Store.universe store))
                g.nodes.(w))
          edges)
      succ;
    (* stratum of a component: longest chain of completion edges below it *)
    let comp_succ = Array.make ncomp [] in
    Array.iteri
      (fun v edges ->
        List.iter
          (fun (w, compl) ->
            if comp_of.(v) <> comp_of.(w) then
              comp_succ.(comp_of.(v)) <-
                (comp_of.(w), compl) :: comp_succ.(comp_of.(v)))
          edges)
      succ;
    let memo = Array.make ncomp (-1) in
    let rec stratum c =
      if memo.(c) >= 0 then memo.(c)
      else begin
        memo.(c) <- 0;
        (* provisional; the condensation is acyclic *)
        let s =
          List.fold_left
            (fun acc (c', compl) ->
              max acc (stratum c' + if compl then 1 else 0))
            0 comp_succ.(c)
        in
        memo.(c) <- s;
        s
      end
    in
    let rel_stratum r = stratum comp_of.(Rel_map.find r g.index) in
    (* A rule must run no later than the stratum of any relation it may
       insert into (so completion readers of that relation see the full
       extension) and no earlier than the strata of its reads; the
       dependency edges guarantee min(defines) >= max(reads), so the
       earliest defined stratum is always a valid choice. *)
    let has_completion_edges =
      List.exists (fun (_, _, compl) -> compl) g.edges
    in
    let max_stratum = ref 0 in
    let rule_stratum =
      List.map
        (fun (rule : Rule.t) ->
          let s =
            match List.concat_map expand_define rule.defines with
            | [] -> 0
            | defines when List.mem Ir.R_any defines ->
              if has_completion_edges then
                Err.unstratifiable ~rule:rule.source
                  "the rule may define any relation (variable or computed \
                   method position in its head), which cannot be ordered \
                   against the program's set-inclusion or negation \
                   dependencies"
              else 0
            | d :: rest ->
              List.fold_left
                (fun acc d' -> min acc (rel_stratum d'))
                (rel_stratum d) rest
          in
          max_stratum := max !max_stratum s;
          (rule, s))
        rules
    in
    let strata = Array.make (!max_stratum + 1) [] in
    List.iter
      (fun (rule, s) -> strata.(s) <- rule :: strata.(s))
      (List.rev rule_stratum);
    { strata; rule_stratum }

(* ------------------------------------------------------------------ *)
(* Liveness: the rules transitively relevant to a set of goal relations.
   Classes are normalised (R_isa_c _ -> R_isa) so hierarchy propagation
   never splits a live class from a dead one. Sound for pruning because
   [reads] already includes the relations under negation and inclusion:
   a skipped rule cannot contribute a tuple to any relation the goals
   (or their support, positive or negated) consult. *)
let live_rules (rules : Rule.t list) ~goals =
  let norm = Ir.norm_rel in
  let seeds = List.sort_uniq Ir.compare_rel (List.map norm goals) in
  if List.mem Ir.R_any seeds then rules
  else begin
    let relevant = ref seeds in
    let selected = ref [] in
    let remaining = ref rules in
    let changed = ref true in
    while !changed do
      changed := false;
      let still_out = ref [] in
      List.iter
        (fun (rule : Rule.t) ->
          let defines = List.map norm rule.defines in
          let touches =
            List.mem Ir.R_any defines
            || List.exists (fun d -> List.mem d !relevant) defines
          in
          if touches then begin
            selected := rule :: !selected;
            changed := true;
            List.iter
              (fun r ->
                let r = norm r in
                if not (List.mem r !relevant) then relevant := r :: !relevant)
              (rule.reads @ rule.completion_reads)
          end
          else still_out := rule :: !still_out)
        !remaining;
      remaining := List.rev !still_out
    done;
    List.rev !selected
  end
