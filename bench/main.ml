(* Benchmark and experiment harness.

   The paper has no tables or figures — its evaluation is a catalogue of
   worked queries and programs (see DESIGN.md). Running this executable
   therefore produces two things:

   1. the EXPERIMENT TABLES E1..E10: the answer sets / model properties for
      every numbered example in the paper, cross-checked across the PathLog
      engine and the one-dimensional baselines (O2SQL, XSQL, naive
      conjunctive evaluation);
   2. Bechamel timings, one group per experiment series, including the
      ablations (join order, semi-naive vs naive, indexed vs scan).

   dune exec bench/main.exe            (full run)
   dune exec bench/main.exe -- quick   (tables only, no timings)

   There is also a load generator for the query server (lib/server):

   dune exec bench/main.exe -- server [CLIENTS] [REQUESTS] [SIZE]

   and a chaos harness (see chaos.ml) that drives the same server with
   the fault-injection registry armed at every point and asserts it
   degrades instead of crashing:

   dune exec bench/main.exe -- chaos [SEED] [CLIENTS] [REQUESTS]
   dune exec bench/main.exe -- chaos mutation [SEED] [WRITERS] [BATCHES]
   dune exec bench/main.exe -- chaos kill [SEED] [WRITERS] [BATCHES] [ROUNDS]

   chaos kill is the kill-and-recover harness: it forks a durable server
   (--data), SIGKILLs it at seed-deterministic commit counts during a
   concurrent mutation storm, restarts it from the same directory, and
   asserts the recovered model equals a replay of every acknowledged
   batch (plus BUSY-while-recovering and WAL torn-tail truncation).

   which starts a server in-process over company(SIZE), drives it with
   CLIENTS concurrent connections issuing REQUESTS queries each (defaults
   8 x 1000, company(200)), validates every response against locally
   computed expected answers (any cross-wired or dropped response is a
   hard failure), and reports throughput and latency percentiles. *)

open Bechamel
open Toolkit
module Program = Pathlog.Program

let section title = Printf.printf "\n=== %s ===\n" title

let subsection title = Printf.printf "-- %s --\n" title

(* ------------------------------------------------------------------ *)
(* Shared instances                                                    *)

let company n =
  let p =
    Program.create (Pathlog.Company.statements (Pathlog.Company.scaled n))
  in
  ignore (Program.run p);
  p

let company_sizes = [ 50; 200; 800 ]

let q11_o2sql =
  {
    Pathlog.O2sql.select = [ "Z" ];
    ranges =
      [
        In_class ("X", "employee");
        In_path ("Y", { root = "X"; steps = [ "vehicles" ] });
      ];
    conds =
      [
        Member ("Y", "automobile");
        Eq ({ root = "Y"; steps = [ "color" ] }, Pvar "Z");
      ];
  }

let q14_xsql =
  {
    Pathlog.Xsql.select = [ "Z" ];
    ranges = [ ("employee", "X"); ("automobile", "Y") ];
    paths =
      [
        {
          root = Rvar "X";
          steps =
            [
              { meth = "vehicles"; selector = Some (Svar "Y") };
              { meth = "color"; selector = Some (Svar "Z") };
            ];
        };
        {
          root = Rvar "Y";
          steps = [ { meth = "cylinders"; selector = Some (Sint 4) } ];
        };
      ];
  }

let pl_colors = "X : employee..vehicles : automobile.color[Z]"

let pl_colors4 =
  "X : employee..vehicles : automobile[cylinders -> 4].color[Z]"

let pl_manager =
  "X : manager..vehicles[color -> red].producedBy[city -> city1; president \
   -> X]"

let o2_manager =
  {
    Pathlog.O2sql.select = [ "X" ];
    ranges =
      [
        In_class ("X", "manager");
        In_path ("Y", { root = "X"; steps = [ "vehicles" ] });
      ];
    conds =
      [
        Eq ({ root = "Y"; steps = [ "color" ] }, Const "red");
        Eq ({ root = "Y"; steps = [ "producedBy"; "city" ] }, Const "city1");
        Eq ({ root = "Y"; steps = [ "producedBy"; "president" ] }, Pvar "X");
      ];
  }

let project_column (answer : Program.answer) col =
  let idx =
    let rec find i = function
      | [] -> invalid_arg "column"
      | c :: rest -> if c = col then i else find (i + 1) rest
    in
    find 0 answer.columns
  in
  List.sort_uniq compare (List.map (fun row -> List.nth row idx) answer.rows)

let flat_query p src =
  Pathlog.Flatten.literals (Program.store p) (Pathlog.Parser.literals src)

(* ------------------------------------------------------------------ *)
(* Experiment tables                                                   *)

let q13_calculus =
  (* the paper's query 1.3: { Z | employee.vehicles.automobile.color[Z] } *)
  Pathlog.Calculus.of_string
    ~classes:[ "employee"; "automobile"; "vehicle"; "manager"; "company" ]
    "employee.vehicles.automobile.color"

let table_e1 () =
  section "E1: queries (1.1)-(1.4) — answers agree across languages";
  Printf.printf "%8s %10s %8s %9s %8s %8s %10s\n" "size" "vehicles" "O2SQL"
    "calculus" "XSQL" "PathLog" "agree";
  List.iter
    (fun n ->
      let p = company n in
      let store = Program.store p in
      let o2 = List.sort_uniq compare (Pathlog.O2sql.eval store q11_o2sql) in
      let calc =
        Pathlog.Obj_id.Set.elements (Pathlog.Calculus.eval store q13_calculus)
      in
      let pl = project_column (Program.query_string p pl_colors) "Z" in
      let pl_as_rows = List.map (fun z -> [ z ]) pl in
      let xs = List.sort_uniq compare (Pathlog.Xsql.eval store q14_xsql) in
      let pl4 = project_column (Program.query_string p pl_colors4) "Z" in
      let census = Pathlog.Company.census (Pathlog.Company.scaled n) in
      Printf.printf "%8d %10d %8d %9d %8d %8d %10b\n" n census.n_vehicles
        (List.length o2) (List.length calc) (List.length xs)
        (List.length pl)
        (o2 = pl_as_rows && calc = pl
        && xs = List.map (fun z -> [ z ]) pl4))
    company_sizes

let table_e2 () =
  section
    "E2: the second dimension — 1 reference vs a conjunction of 1-D paths";
  let p = company 50 in
  let store = Program.store p in
  let refs =
    [
      ("colors (1.1)", pl_colors);
      ("4-cylinder colors (2.1)", pl_colors4);
      ("boss city correlation (2.3)", "X : employee[city -> X.boss.city]");
      ("manager query (sec. 2)", pl_manager);
    ]
  in
  Printf.printf "%-32s %12s %18s\n" "query" "references" "1-D conditions";
  List.iter
    (fun (name, src) ->
      let r = Pathlog.Parser.reference src in
      Printf.printf "%-32s %12d %18d\n" name 1
        (Pathlog.Translate.conjunct_count store r))
    refs;
  subsection "automatic translation of (2.1)";
  print_endline
    (Pathlog.Translate.to_xsql_text store ~select:[ "Z" ]
       (Pathlog.Parser.reference pl_colors4))

let table_e3 () =
  section "E3: manager query — single reference vs multi-clause O2SQL";
  List.iter
    (fun n ->
      let p = company n in
      let store = Program.store p in
      let pl = (Program.query_string p pl_manager).rows in
      let o2 = Pathlog.O2sql.eval store o2_manager in
      Printf.printf
        "size %5d: PathLog %d answers, O2SQL %d answers, agree %b\n" n
        (List.length (List.sort_uniq compare pl))
        (List.length (List.sort_uniq compare o2))
        (List.sort_uniq compare pl = List.sort_uniq compare o2))
    company_sizes

let table_e4 () =
  section "E4: nested path in a filter (2.3)";
  let p = company 200 in
  let answer = Program.query_string p "X : employee[city -> X.boss.city]" in
  Printf.printf "employees living in their boss's city: %d of 200\n"
    (List.length answer.rows)

let table_e5 () =
  section "E5: virtual objects — rule (2.4) addresses";
  List.iter
    (fun n ->
      let stmts = Pathlog.Company.statements (Pathlog.Company.scaled n) in
      let rules =
        Pathlog.Parser.program
          "X.address[street -> X.street; city -> X.city] <- X : employee."
      in
      let p = Program.create (stmts @ rules) in
      ignore (Program.run p);
      let u = Program.universe p in
      let address = Pathlog.Store.name (Program.store p) "address" in
      let all_skolems = Pathlog.Universe.skolems u in
      let address_skolems =
        List.filter
          (fun sk ->
            match Pathlog.Universe.descriptor u sk with
            | Pathlog.Universe.Skolem { meth; _ } -> meth = address
            | _ -> false)
          all_skolems
      in
      (* members of employee include the class object [manager] (one
         hierarchy relation, section 3); the class object has no street or
         city, so the head paths X.street / X.city invent those too *)
      let employees =
        List.length (Program.query_string p "X : employee").rows
      in
      Printf.printf
        "size %5d: %d address objects for %d employee-members (1:1 %b), %d other invented objects\n"
        n
        (List.length address_skolems)
        employees
        (List.length address_skolems = employees)
        (List.length all_skolems - List.length address_skolems))
    company_sizes

let table_e6 () =
  section "E6: rules (6.1) vs (6.2) — virtual vs existing bosses";
  let base =
    {|
    p1 : employee[worksFor -> cs1].
    p2 : employee[worksFor -> cs2; boss -> b2].
    p3 : employee[worksFor -> cs2; boss -> b2].
    |}
  in
  let load text =
    let p = Program.of_string text in
    ignore (Program.run p);
    p
  in
  let p61 =
    load (base ^ "X.boss[worksFor -> D] <- X : employee[worksFor -> D].")
  in
  let p62 =
    load (base ^ "Z[worksFor -> D] <- X : employee[worksFor -> D].boss[Z].")
  in
  let count p =
    List.length (Program.query_string p "Z[worksFor -> D]").rows
  in
  Printf.printf
    "(6.1) worksFor facts: %d (creates a virtual boss for p1)\n\
     (6.2) worksFor facts: %d (only existing bosses)\n"
    (count p61) (count p62);
  Printf.printf "(6.1) virtual objects: %d, (6.2): %d\n"
    (List.length (Pathlog.Universe.skolems (Program.universe p61)))
    (List.length (Pathlog.Universe.skolems (Program.universe p62)))

let tc_shapes =
  [
    ("chain(64)", Pathlog.Genealogy.Chain 64);
    ("binary_tree(6)", Pathlog.Genealogy.Binary_tree 6);
    ( "forest(128)",
      Pathlog.Genealogy.Random_forest
        { people = 128; max_kids = 3; seed = 11 } );
  ]

let tc_program ?(rules = Pathlog.Genealogy.desc_rules) mode shape =
  let config = { Pathlog.Fixpoint.default_config with mode } in
  let stmts = Pathlog.Genealogy.statements shape @ rules in
  let p = Program.create ~config stmts in
  let stats = Program.run p in
  (p, stats)

let table_e7 () =
  section "E7: transitive closure (6.4) — naive vs semi-naive, vs reference";
  Printf.printf "%-18s %8s %14s %14s %14s %8s\n" "shape" "people"
    "naive firings" "semi firings" "closure size" "correct";
  List.iter
    (fun (name, shape) ->
      let _, s_naive = tc_program Pathlog.Fixpoint.Naive shape in
      let p_semi, s_semi = tc_program Pathlog.Fixpoint.Seminaive shape in
      let reference = Pathlog.Genealogy.closure shape in
      let closure_size =
        List.fold_left (fun acc (_, d) -> acc + List.length d) 0 reference
      in
      let correct =
        List.for_all
          (fun (i, descs) ->
            let got =
              List.sort compare
                (List.concat
                   (Pathlog.answers p_semi
                      (Printf.sprintf "p%d[desc ->> {X}]" i)))
            in
            got = List.sort compare (List.map (Printf.sprintf "p%d") descs))
          reference
      in
      Printf.printf "%-18s %8d %14d %14d %14d %8b\n" name
        (Pathlog.Genealogy.size shape)
        s_naive.firings s_semi.firings closure_size correct)
    tc_shapes;
  subsection "generic higher-order tc (kids.tc) equals desc";
  let shape = Pathlog.Genealogy.Binary_tree 4 in
  let p_desc, _ = tc_program Pathlog.Fixpoint.Seminaive shape in
  let p_tc, _ =
    tc_program ~rules:Pathlog.Genealogy.generic_tc_rules
      Pathlog.Fixpoint.Seminaive shape
  in
  let same =
    List.for_all
      (fun (i, _) ->
        Pathlog.answers p_desc (Printf.sprintf "p%d[desc ->> {X}]" i)
        = Pathlog.answers p_tc (Printf.sprintf "p%d[(kids.tc) ->> {X}]" i))
      (Pathlog.Genealogy.closure shape)
  in
  Printf.printf "kids.tc = desc on binary_tree(4): %b\n" same

let table_e8 () =
  section "E8: stratification (section 6)";
  let p =
    Program.of_string
      {|
      p1[helper ->> {x1, x2}].
      p1[assistants ->> {Y}] <- p1[helper ->> {Y}].
      p2[friends ->> {x1, x2, x3}].
      p2 : goodFriend <- p2[friends ->> p1..assistants].
      |}
  in
  ignore (Program.run p);
  Printf.printf "strata used: %d\n" (Array.length (Program.strata p));
  Printf.printf "p2 : goodFriend entailed: %b\n"
    ((Program.query_string p "p2 : goodFriend").rows <> []);
  let cyclic =
    {|
    p1[assistants ->> {Y}] <- p1[friends ->> p1..assistants], p1[assistants ->> {Y}].
    p1[friends ->> {x1}].
    |}
  in
  match Program.of_string cyclic with
  | exception Program.Invalid msg ->
    Printf.printf "cyclic variant rejected at load: %s\n" msg
  | exception Pathlog.Err.Unstratifiable u ->
    Printf.printf "cyclic variant rejected: %s\n" u.Pathlog.Err.u_message
  | p -> (
    match Program.run p with
    | exception Pathlog.Err.Unstratifiable u ->
      Printf.printf "cyclic variant rejected: %s\n" u.Pathlog.Err.u_message
    | _ -> print_endline "WARNING: cyclic variant was not rejected")

let table_e9 () =
  section "E9: intensional method (power rule) on existing objects";
  let p =
    Program.of_string
      {|
      car1 : automobile[engine -> eng1]. eng1[power -> 150].
      car2 : automobile[engine -> eng2]. eng2[power -> 90].
      X[power -> Y] <- X : automobile.engine[power -> Y].
      |}
  in
  ignore (Program.run p);
  Printf.printf "derived power facts: %d, virtual objects: %d (must be 0)\n"
    (List.length (Program.query_string p "X[power -> P]").rows)
    (List.length (Pathlog.Universe.skolems (Program.universe p)))

let table_e10 () =
  section "E10: ablation sanity (answers invariant under strategy)";
  let p = company 200 in
  let store = Program.store p in
  let q = flat_query p pl_manager in
  let greedy = Pathlog.Solve.named_solutions store q in
  let source =
    Pathlog.Solve.named_solutions ~order:Pathlog.Solve.Source store q
  in
  let conj = Pathlog.Conjunctive.named_solutions store q in
  Printf.printf "greedy=%d source=%d naive-conjunctive=%d identical=%b\n"
    (List.length greedy) (List.length source) (List.length conj)
    (List.sort compare greedy = List.sort compare source
    && List.sort compare greedy = List.sort compare conj)

let table_e11 () =
  section
    "E11: evaluation strategies — full vs demand-focused vs goal-directed";
  let stmts =
    Pathlog.Genealogy.statements (Pathlog.Genealogy.Chain 100)
    @ Pathlog.Genealogy.desc_rules
  in
  let q = "p95[desc ->> {X}]" in
  let lits = Pathlog.Parser.literals q in
  (* full materialisation *)
  let p_full = Program.create stmts in
  let s_full = Program.run p_full in
  let full_rows = (Program.query_string p_full q).rows in
  (* demand-focused (rule relevance; here all rules are relevant) *)
  let p_foc = Program.create stmts in
  let foc_answer, s_foc, considered = Program.query_focused p_foc lits in
  (* goal-directed tabling *)
  let p_top = Program.create stmts in
  let top = Program.query_topdown p_top lits in
  Printf.printf "query: %s on chain(100) (full closure = 5050 tuples)
" q;
  Printf.printf "full:        %d answers, %d rule firings
"
    (List.length full_rows) s_full.firings;
  Printf.printf "focused:     %d answers, %d rule firings, %d rules
"
    (List.length foc_answer.rows)
    s_foc.firings considered;
  (match top with
  | Some (answer, stats) ->
    Printf.printf
      "goal-driven: %d answers, %d tabled goals, %d tabled tuples, %d passes
"
      (List.length answer.rows)
      stats.goals stats.answers stats.passes
  | None -> print_endline "goal-driven: not applicable");
  let agree =
    match top with
    | Some (answer, _) ->
      List.sort compare (List.map (Program.row_to_string p_top) answer.rows)
      = List.sort compare (List.map (Program.row_to_string p_full) full_rows)
    | None -> false
  in
  Printf.printf "answers agree: %b
" agree

let table_e12 () =
  section "E12: parts explosion (bill of materials), argument methods";
  List.iter
    (fun parts ->
      let cfg = { Pathlog.Parts.default with parts } in
      let p =
        Program.create
          (Pathlog.Parts.statements cfg @ Pathlog.Parts.contains_rules)
      in
      let stats = Program.run p in
      let oracle =
        List.fold_left
          (fun acc (_, c) -> acc + List.length c)
          0 (Pathlog.Parts.closure cfg)
      in
      let derived =
        List.length (Program.query_string p "X[contains ->> {Y}]").rows
      in
      Printf.printf
        "parts %4d: closure %6d tuples (oracle %6d, match %b), %6d firings\n"
        parts derived oracle (derived = oracle) stats.firings)
    [ 60; 120; 240 ]

(* ------------------------------------------------------------------ *)
(* Bechamel timing benches                                             *)

let run_benches tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~stabilize:false ()
  in
  let raw =
    Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"" tests)
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  in
  Printf.printf "%-48s %14s %8s\n" "benchmark" "ns/run" "r^2";
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> Printf.sprintf "%14.0f" e
        | Some [] | None -> Printf.sprintf "%14s" "-"
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r -> Printf.sprintf "%8.4f" r
        | None -> Printf.sprintf "%8s" "-"
      in
      Printf.printf "%-48s %s %s\n" name est r2)
    (List.sort compare rows)

let query_bench name p src =
  let store = Program.store p in
  let q = flat_query p src in
  Test.make ~name
    (Staged.stage (fun () -> Pathlog.Solve.named_solutions store q))

let bench_e1 () =
  subsection "E1/E3 timings: query evaluation strategies, company(200)";
  let p = company 200 in
  let store = Program.store p in
  let q_colors = flat_query p pl_colors in
  let q_manager = flat_query p pl_manager in
  run_benches
    [
      Test.make ~name:"e1/o2sql nested loops (1.1)"
        (Staged.stage (fun () -> Pathlog.O2sql.eval store q11_o2sql));
      Test.make ~name:"e1/xsql via naive conjunction (1.4)"
        (Staged.stage (fun () -> Pathlog.Xsql.eval store q14_xsql));
      Test.make ~name:"e1/pathlog greedy indexed (2.1)"
        (Staged.stage (fun () ->
             Pathlog.Solve.named_solutions store q_colors));
      Test.make ~name:"e3/o2sql manager query"
        (Staged.stage (fun () -> Pathlog.O2sql.eval store o2_manager));
      Test.make ~name:"e3/pathlog manager query"
        (Staged.stage (fun () ->
             Pathlog.Solve.named_solutions store q_manager));
    ]

let bench_e5 () =
  subsection "E5 timings: virtual-address materialisation";
  let tests =
    List.map
      (fun n ->
        let stmts =
          Pathlog.Company.statements (Pathlog.Company.scaled n)
          @ Pathlog.Parser.program
              "X.address[street -> X.street; city -> X.city] <- X : \
               employee."
        in
        Test.make ~name:(Printf.sprintf "e5/materialize addresses n=%d" n)
          (Staged.stage (fun () ->
               let p = Program.create stmts in
               Program.run p)))
      [ 50; 200 ]
  in
  run_benches tests

let bench_e7 () =
  subsection "E7 timings: transitive closure, naive vs semi-naive";
  let tests =
    List.concat_map
      (fun (name, shape) ->
        let stmts =
          Pathlog.Genealogy.statements shape @ Pathlog.Genealogy.desc_rules
        in
        List.map
          (fun (mname, mode) ->
            let config = { Pathlog.Fixpoint.default_config with mode } in
            Test.make
              ~name:(Printf.sprintf "e7/%s %s" name mname)
              (Staged.stage (fun () ->
                   let p = Program.create ~config stmts in
                   Program.run p)))
          [
            ("naive", Pathlog.Fixpoint.Naive);
            ("semi-naive", Pathlog.Fixpoint.Seminaive);
          ])
      tc_shapes
  in
  run_benches tests

let bench_e11 () =
  subsection "E11 timings: point query, full vs goal-directed, chain(100)";
  let stmts =
    Pathlog.Genealogy.statements (Pathlog.Genealogy.Chain 100)
    @ Pathlog.Genealogy.desc_rules
  in
  let lits = Pathlog.Parser.literals "p95[desc ->> {X}]" in
  run_benches
    [
      Test.make ~name:"e11/full materialisation + query"
        (Staged.stage (fun () ->
             let p = Program.create stmts in
             ignore (Program.run p);
             Program.query p lits));
      Test.make ~name:"e11/goal-directed tabling"
        (Staged.stage (fun () ->
             let p = Program.create stmts in
             Program.query_topdown p lits));
    ]

let bench_e1_scaling () =
  subsection
    "E1 scaling series (figure): query (2.1) time vs database size";
  let programs =
    List.map (fun n -> (n, company n)) [ 50; 100; 200; 400; 800 ]
  in
  run_benches
    (List.map
       (fun (n, p) ->
         let store = Program.store p in
         let q = flat_query p pl_colors4 in
         Test.make
           ~name:(Printf.sprintf "e1-fig/query 2.1, company(%4d)" n)
           (Staged.stage (fun () -> Pathlog.Solve.named_solutions store q)))
       programs)

let bench_e12 () =
  subsection "E12 timings: BOM closure, naive vs semi-naive";
  let tests =
    List.concat_map
      (fun parts ->
        let cfg = { Pathlog.Parts.default with parts } in
        let stmts =
          Pathlog.Parts.statements cfg @ Pathlog.Parts.contains_rules
        in
        List.map
          (fun (mname, mode) ->
            let config = { Pathlog.Fixpoint.default_config with mode } in
            Test.make
              ~name:(Printf.sprintf "e12/parts(%d) %s" parts mname)
              (Staged.stage (fun () ->
                   let p = Program.create ~config stmts in
                   Program.run p)))
          [
            ("naive", Pathlog.Fixpoint.Naive);
            ("semi-naive", Pathlog.Fixpoint.Seminaive);
          ])
      [ 60; 120 ]
  in
  run_benches tests

let bench_e10 () =
  subsection "E10 timings: ablations (join order, scans vs indexes)";
  let p = company 200 in
  let store = Program.store p in
  let q = flat_query p pl_manager in
  run_benches
    [
      Test.make ~name:"e10/manager greedy order (indexed)"
        (Staged.stage (fun () -> Pathlog.Solve.named_solutions store q));
      Test.make ~name:"e10/manager source order (indexed)"
        (Staged.stage (fun () ->
             Pathlog.Solve.named_solutions ~order:Pathlog.Solve.Source store
               q));
      Test.make ~name:"e10/manager naive conjunctive (scans)"
        (Staged.stage (fun () ->
             Pathlog.Conjunctive.named_solutions store q));
      query_bench "e10/boss-city correlation (2.3)" p
        "X : employee[city -> X.boss.city]";
    ]

let bench_substrate () =
  subsection "substrate micro-benches: store operations";
  let p = company 400 in
  let store = Program.store p in
  let u = Program.universe p in
  let vehicles = Pathlog.Store.name store "vehicles" in
  let color = Pathlog.Store.name store "color" in
  let employee = Pathlog.Store.name store "employee" in
  let e1 = Pathlog.Store.name store "e1" in
  let red = Pathlog.Store.name store "red" in
  ignore u;
  run_benches
    [
      Test.make ~name:"store/scalar_lookup hit"
        (Staged.stage (fun () ->
             Pathlog.Store.scalar_lookup store ~meth:color ~recv:e1 ~args:[]));
      Test.make ~name:"store/set_lookup"
        (Staged.stage (fun () ->
             Pathlog.Store.set_lookup store ~meth:vehicles ~recv:e1 ~args:[]));
      Test.make ~name:"store/scalar_inverse bucket"
        (Staged.stage (fun () ->
             Pathlog.Store.scalar_inverse store ~meth:color ~res:red));
      Test.make ~name:"store/members closure (employee)"
        (Staged.stage (fun () -> Pathlog.Store.members store employee));
      Test.make ~name:"store/is_member"
        (Staged.stage (fun () -> Pathlog.Store.is_member store e1 employee));
      Test.make ~name:"store/fresh store + 1k scalar inserts"
        (Staged.stage (fun () ->
             let st = Pathlog.Store.create () in
             let m = Pathlog.Store.name st "m" in
             for i = 0 to 999 do
               let o = Pathlog.Store.int st i in
               ignore
                 (Pathlog.Store.add_scalar st ~meth:m ~recv:o ~args:[]
                    ~res:o)
             done));
    ]

(* ------------------------------------------------------------------ *)
(* Server load generator                                               *)

(* Render an answer exactly as the server frames it (see
   Plserver.Server.render_answer), so responses can be compared
   byte-for-byte against locally computed expectations. *)
let expected_payload p (answer : Program.answer) =
  match answer.columns with
  | [] -> [ (if answer.rows = [] then "no" else "yes") ]
  | columns ->
    let u = Program.universe p in
    String.concat "\t" columns
    :: List.map
         (fun row ->
           String.concat "\t"
             (List.map (Pathlog.Universe.to_string u) row))
         answer.rows

let server_queries =
  [|
    pl_colors;
    pl_colors4;
    pl_manager;
    "X : manager";
    "X : employee[city -> X.boss.city]";
    "e1 : employee";
    "X : company.president[P]";
    "X : employee[age -> A; city -> newYork]";
  |]

let server_bench ~clients ~requests ~size =
  section
    (Printf.sprintf
       "server load generator: %d clients x %d requests, company(%d)"
       clients requests size);
  let p = company size in
  (* Pin every query's answer before the run; the store is read-only from
     here on, so any response that differs is dropped/cross-wired. *)
  let expected =
    Array.map
      (fun q -> List.sort compare (expected_payload p (Program.query_string p q)))
      server_queries
  in
  let config =
    {
      Pathlog.Server.default_config with
      workers = 4;
      queue_capacity = 2 * clients;
    }
  in
  let srv =
    Pathlog.Server.create ~config ~program:p
      (Pathlog.Server.Tcp ("127.0.0.1", 0))
  in
  let addr = Pathlog.Server.address srv in
  let metrics = Pathlog.Metrics.create () in
  let mismatches = ref 0 in
  let busy_retries = ref 0 in
  let hard_errors = ref 0 in
  let tally = Mutex.create () in
  let nq = Array.length server_queries in
  let client_thread k =
    let c = Pathlog.Client.connect addr in
    Fun.protect
      ~finally:(fun () -> Pathlog.Client.close c)
      (fun () ->
        for i = 0 to requests - 1 do
          let qi = (k + i) mod nq in
          let q = server_queries.(qi) in
          let rec attempt retries =
            let t0 = Unix.gettimeofday () in
            match Pathlog.Client.request c ("QUERY " ^ q) with
            | Ok (Pathlog.Protocol.Ok lines) ->
              Pathlog.Metrics.record metrics ~verb:"QUERY"
                ~outcome:Pathlog.Metrics.Ok
                ~latency_s:(Unix.gettimeofday () -. t0);
              if List.sort compare lines <> expected.(qi) then begin
                Mutex.lock tally;
                incr mismatches;
                Mutex.unlock tally
              end
            | Ok (Pathlog.Protocol.Busy (retry_ms, _)) ->
              Mutex.lock tally;
              incr busy_retries;
              Mutex.unlock tally;
              Thread.delay (Float.max 0.001 (float_of_int retry_ms /. 1000.));
              attempt (retries + 1)
            | Ok (Pathlog.Protocol.Degraded _)
            | Ok (Pathlog.Protocol.Err _ | Pathlog.Protocol.Pong)
            | Error _ ->
              Mutex.lock tally;
              incr hard_errors;
              Mutex.unlock tally
          in
          attempt 0
        done)
  in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun k -> Thread.create client_thread k)
  in
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  let snap = Pathlog.Metrics.snapshot metrics in
  let total = clients * requests in
  Printf.printf "requests:        %d ok of %d (%d cross-wired, %d errors)\n"
    snap.requests_total total !mismatches !hard_errors;
  Printf.printf "busy retries:    %d\n" !busy_retries;
  Printf.printf "elapsed:         %.2f s\n" elapsed;
  Printf.printf "throughput:      %.0f req/s\n"
    (float_of_int snap.requests_total /. elapsed);
  let ms s = s *. 1e3 in
  Printf.printf
    "latency (ms):    min %.3f  mean %.3f  p50 %.3f  p99 %.3f  max %.3f\n"
    (ms snap.latency_min_s) (ms snap.latency_mean_s) (ms snap.latency_p50_s)
    (ms snap.latency_p99_s) (ms snap.latency_max_s);
  subsection "server-side STATS";
  let c = Pathlog.Client.connect addr in
  (match Pathlog.Client.stats c with
  | Ok lines ->
    List.iter
      (fun l ->
        if
          List.exists
            (fun prefix -> String.starts_with ~prefix l)
            [ "requests"; "latency_p"; "connections" ]
        then Printf.printf "  %s\n" l)
      lines
  | Error msg -> Printf.printf "  STATS failed: %s\n" msg);
  Pathlog.Client.close c;
  Pathlog.Server.request_stop srv;
  Pathlog.Server.shutdown srv;
  if snap.requests_total <> total || !mismatches > 0 || !hard_errors > 0
  then begin
    print_endline "server bench: FAILED";
    exit 1
  end
  else print_endline "server bench: ok"

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "perf" then begin
    Perf.main
      (Array.to_list (Array.sub Sys.argv 2 (Array.length Sys.argv - 2)));
    exit 0
  end

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "emit" then begin
    Perf.emit_programs
      (Array.to_list (Array.sub Sys.argv 2 (Array.length Sys.argv - 2)));
    exit 0
  end

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "chaos" then begin
    Chaos.main
      (Array.to_list (Array.sub Sys.argv 2 (Array.length Sys.argv - 2)));
    exit 0
  end

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "server" then begin
    let arg i default =
      if Array.length Sys.argv > i then int_of_string Sys.argv.(i)
      else default
    in
    server_bench ~clients:(arg 2 8) ~requests:(arg 3 1000) ~size:(arg 4 200);
    exit 0
  end

let () =
  let quick = Array.length Sys.argv > 1 && Sys.argv.(1) = "quick" in
  table_e1 ();
  table_e2 ();
  table_e3 ();
  table_e4 ();
  table_e5 ();
  table_e6 ();
  table_e7 ();
  table_e8 ();
  table_e9 ();
  table_e10 ();
  table_e11 ();
  table_e12 ();
  if not quick then begin
    section "Bechamel timings";
    bench_e1 ();
    bench_e5 ();
    bench_e7 ();
    bench_e10 ();
    bench_e11 ();
    bench_e1_scaling ();
    bench_e12 ();
    bench_substrate ()
  end;
  print_endline "\nbench: done"
