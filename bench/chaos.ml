(* Chaos harness: evaluate and serve a known workload with the fault
   registry armed at every injection point, and assert the three
   robustness invariants the fault layer promises:

   1. the server (and the in-process evaluator) never crashes — injected
      failures surface as per-request/per-connection errors only;
   2. store invariants hold after the storm (Store.check_invariants);
   3. completed, non-degraded answers equal the fault-free run — delays,
      transient write failures and torn connections must never change
      WHAT is computed, only whether a given attempt completes.

   Deterministic under its seed: the fault schedule is a pure function of
   (seed, point, per-point hit counter), so a failing seed replays.

   dune exec bench/main.exe -- chaos [SEED] [CLIENTS] [REQUESTS] *)

module Program = Pathlog.Program
module Fault = Pathlog.Fault

let size = 100

let queries =
  [|
    "X : employee[age -> A; city -> newYork]";
    "X : manager";
    "e1 : employee";
    "X : company.president[P]";
    "X : employee[city -> X.boss.city]";
  |]

let expected_payload p (answer : Program.answer) =
  match answer.columns with
  | [] -> [ (if answer.rows = [] then "no" else "yes") ]
  | columns ->
    let u = Program.universe p in
    String.concat "\t" columns
    :: List.map
         (fun row ->
           String.concat "\t"
             (List.map (Pathlog.Universe.to_string u) row))
         answer.rows

let company_statements () =
  Pathlog.Company.statements (Pathlog.Company.scaled size)

(* Build + evaluate under an armed registry. Solver_step delay faults and
   transient Store_write failures are absorbed inside the engine; a
   Store_write failure streak long enough to escape the write path's
   bounded retry surfaces as Fault.Injected — evaluation is monotone over
   an append-only store, so rerunning the fixpoint on the same program
   object simply continues from the partial model. *)
let evaluate_under_faults () =
  let p = Program.create (company_statements ()) in
  let rec go attempts =
    match Program.run p with
    | _stats -> p
    | exception Fault.Injected _ when attempts < 50 -> go (attempts + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Mutation storm: concurrent ASSERT/RETRACT writers plus subscribers
   under the armed fault registry.

   Invariants checked:
   1. the server survives and every writer either gets a definite reply
      or resolves a torn connection by probing for its own facts;
   2. replaying the committed batch log into a fresh Live instance yields
      a model bit-for-bit equal to the server's (writers own disjoint
      fact namespaces, so per-writer order fully determines the result);
   3. store invariants and the replay's support index are clean;
   4. a subscriber's baseline plus its DELTA stream reconstructs the
      final answer set of its standing query.

   dune exec bench/main.exe -- chaos mutation [SEED] [WRITERS] [BATCHES] *)

let mutation_base =
  {|
  seed0[edge ->> {seed1}]. seed1[edge ->> {seed2}].
  X[tc ->> {Y}] <- X[edge ->> {Y}].
  X[tc ->> {Y}] <- X[edge ->> {Z}] , Z[tc ->> {Y}].
  |}

type op = { op_retract : bool; op_text : string }

let mutation_storm ~seed ~writers ~batches =
  Printf.printf "=== chaos mutation: seed %d, %d writers x %d batches ===\n%!"
    seed writers batches;
  let failures = ref [] in
  let fail fmt =
    Printf.ksprintf (fun m -> failures := m :: !failures) fmt
  in
  let p = Pathlog.load mutation_base in
  let config =
    {
      Pathlog.Server.default_config with
      workers = 3;
      queue_capacity = 2 * writers;
      busy_retry_after_ms = 2;
    }
  in
  let srv =
    Pathlog.Server.create ~config ~program:p
      (Pathlog.Server.Tcp ("127.0.0.1", 0))
  in
  let addr = Pathlog.Server.address srv in

  (* Subscribe before the faults go live: DELTA pushes bypass the wire
     fault point, so the stream stays intact through the storm and the
     reconciliation below is exact. *)
  let sub_query = "seed0[tc ->> {Y}]" in
  let sub_conn = Pathlog.Client.connect addr in
  let sub_rows = ref [] in
  let sub_deltas = ref 0 in
  (match Pathlog.Client.subscribe sub_conn sub_query with
  | Ok s -> sub_rows := s.Pathlog.Client.baseline
  | Error e -> fail "SUBSCRIBE failed before the storm: %s" e);

  Fault.configure ~seed
    [
      (Fault.Store_write, Fault.Fail, 0.01);
      (Fault.Solver_step, Fault.Delay 0.0002, 0.01);
      (Fault.Wire_read, Fault.Fail, 0.005);
      (Fault.Wire_write, Fault.Short, 0.005);
      (Fault.Wire_write, Fault.Delay 0.001, 0.01);
    ];

  (* Writer k mutates only objects named wK_*: the namespaces are
     disjoint, so any interleaving of the per-writer logs replays to the
     same model. Ops: grow a private chain, sometimes link it under
     seed2 (so the subscription sees it), sometimes retract a committed
     edge. A torn connection mid-mutation is resolved by probing for the
     batch's distinguishing fact on a fresh connection. *)
  let logs = Array.make writers [] in
  let torn = ref 0 and busy_shed = ref 0 and unresolved = ref 0 in
  let tally = Mutex.create () in
  let bump r = Mutex.lock tally; incr r; Mutex.unlock tally in
  let writer_thread k =
    let rng = Random.State.make [| seed; k |] in
    let conn = ref (Pathlog.Client.connect addr) in
    let committed = ref [] in
    let mutate op probe_fact expect_present =
      (* -> true when the op definitely committed *)
      let rec attempt tries =
        if tries > 6 then begin
          bump unresolved;
          false
        end
        else
          let verb = if op.op_retract then "RETRACT" else "ASSERT" in
          match
            Pathlog.Client.request_with_retry ~max_attempts:6
              ~base_delay_s:0.002
              ~seed:((seed * 257) + k)
              !conn (verb ^ " " ^ op.op_text)
          with
          | Ok (Pathlog.Protocol.Ok _) -> true
          | Ok (Pathlog.Protocol.Busy _) ->
            (* still shedding after the client's own retries *)
            bump busy_shed;
            attempt (tries + 1)
          | Ok _ -> false
          | Error (`Eof | `Malformed _) -> (
            (* torn mid-mutation: did it commit? probe on a fresh
               connection for the batch's distinguishing fact *)
            bump torn;
            Pathlog.Client.close !conn;
            match Pathlog.Client.connect addr with
            | exception Unix.Unix_error _ ->
              bump unresolved;
              false
            | c -> (
              conn := c;
              match Pathlog.Client.query c probe_fact with
              | Ok [ "yes" ] -> expect_present
              | Ok [ "no" ] -> not expect_present || attempt (tries + 1)
              | Ok _ | Error _ ->
                bump unresolved;
                false))
      in
      attempt 0
    in
    let next = ref 0 in
    for _ = 1 to batches do
      let retractable = !committed in
      if retractable <> [] && Random.State.int rng 3 = 0 then begin
        (* retract a previously committed edge *)
        let i = Random.State.int rng (List.length retractable) in
        let fact = List.nth retractable i in
        let op = { op_retract = true; op_text = fact ^ "." } in
        if mutate op fact false then begin
          committed := List.filteri (fun j _ -> j <> i) retractable;
          logs.(k) <- op :: logs.(k)
        end
      end
      else begin
        let a, b =
          if Random.State.int rng 4 = 0 then
            (* link the private chain under the seeds *)
            ("seed2", Printf.sprintf "w%d_n%d" k (Random.State.int rng 5))
          else begin
            let i = !next in
            incr next;
            (Printf.sprintf "w%d_n%d" k (i mod 7),
             Printf.sprintf "w%d_n%d" k ((i + 1 + Random.State.int rng 3) mod 7))
          end
        in
        let fact = Printf.sprintf "%s[edge ->> {%s}]" a b in
        if not (List.mem fact !committed) then begin
          let op = { op_retract = false; op_text = fact ^ "." } in
          if mutate op fact true then begin
            committed := fact :: !committed;
            logs.(k) <- op :: logs.(k)
          end
        end
      end
    done;
    Pathlog.Client.close !conn
  in
  let threads = List.init writers (fun k -> Thread.create writer_thread k) in
  (* drain the subscriber concurrently: apply DELTA frames in order *)
  let storm_done = ref false in
  let sub_thread =
    Thread.create
      (fun () ->
        let rec drain () =
          match Pathlog.Client.next_delta ~timeout_s:0.1 sub_conn with
          | Some d ->
            incr sub_deltas;
            let removed = d.Pathlog.Protocol.vanished in
            sub_rows :=
              List.sort compare
                (d.Pathlog.Protocol.appeared
                @ List.filter (fun r -> not (List.mem r removed)) !sub_rows);
            drain ()
          | None -> if not !storm_done then drain ()
        in
        drain ())
      ()
  in
  List.iter Thread.join threads;
  let injected_total = Fault.injected_total () in
  Fault.disable ();
  (* let the last DELTA frames flush, then stop the drain *)
  Thread.delay 0.3;
  storm_done := true;
  Thread.join sub_thread;

  (* Reconciliation 1: the subscriber's maintained answer set equals a
     fresh subscription's baseline. *)
  (match Pathlog.Client.connect addr with
  | exception Unix.Unix_error (e, _, _) ->
    fail "server dead after the storm: %s" (Unix.error_message e)
  | c ->
    (match Pathlog.Client.subscribe c sub_query with
    | Ok s ->
      if List.sort compare s.Pathlog.Client.baseline
         <> List.sort compare !sub_rows
      then
        fail "subscriber drift: baseline+deltas %d rows, server %d rows"
          (List.length !sub_rows)
          (List.length s.Pathlog.Client.baseline)
    | Error e -> fail "post-storm SUBSCRIBE failed: %s" e);
    Pathlog.Client.close c);
  Pathlog.Server.request_stop srv;
  Pathlog.Server.shutdown srv;

  (* Reconciliation 2: replay the committed batch log into a fresh Live
     instance; the models must agree exactly, and both the server store's
     invariants and the replay's support index must be clean. *)
  let replay = Pathlog.Live.attach (Pathlog.load mutation_base) in
  let replayed = ref 0 in
  Array.iter
    (fun ops ->
      List.iter
        (fun op ->
          incr replayed;
          try
            if op.op_retract then
              ignore
                (Pathlog.Live.retract_batch replay op.op_text
                  : Pathlog.Live.batch_stats)
            else
              ignore
                (Pathlog.Live.assert_batch replay op.op_text
                  : Pathlog.Live.batch_stats)
          with Pathlog.Live.Rejected m ->
            fail "replay rejected %S: %s" op.op_text m)
        (List.rev ops))
    logs;
  let added, removed =
    Pathlog.Program.diff_models
      ~before:(Pathlog.Live.program replay)
      ~after:p
  in
  if added <> [] || removed <> [] then
    fail "server model differs from batch-log replay (+%d -%d)"
      (List.length added) (List.length removed);
  (match Pathlog.Store.check_invariants (Pathlog.Program.store p) with
  | [] -> ()
  | broken ->
    List.iter (fun m -> fail "server store invariant: %s" m) broken);
  (match Pathlog.Live.check_support replay with
  | [] -> ()
  | broken -> List.iter (fun m -> fail "replay support index: %s" m) broken);

  Printf.printf
    "committed batches: %d replayed; %d torn connections, %d busy sheds, \
     %d unresolved; %d DELTA frames\n"
    !replayed !torn !busy_shed !unresolved !sub_deltas;
  Printf.printf "injected faults: %d total\n" injected_total;
  Pathlog.Client.close sub_conn;
  if injected_total = 0 then
    fail "the storm injected nothing — the harness is not testing faults";
  match !failures with
  | [] -> print_endline "chaos mutation: ok"
  | fs ->
    List.iter (fun m -> Printf.printf "chaos FAILURE: %s\n" m) (List.rev fs);
    exit 1

(* ------------------------------------------------------------------ *)
(* Kill-and-recover storm: crash-recovery proven by SIGKILL.

   A child process serves [mutation_base] durably (--data semantics: WAL
   fsync'd per accepted batch, snapshots every few batches). Writers in
   the parent storm it with ASSERT/RETRACT; at a seed-deterministic
   committed count the child is SIGKILLed mid-storm, restarted over the
   same data directory, and the storm continues — for ROUNDS cycles,
   then one fault-free verification round.

   Invariants:
   1. durability: every batch a client saw OK for is in the recovered
      model (the batch-log replay equals the served model exactly);
   2. atomicity at the crash edge: an op torn mid-flight is resolved by
      probing after recovery — present or absent, never half-applied;
   3. the restarted server sheds requests with BUSY (retry-after) while
      the WAL suffix replays, and retrying clients land after it;
   4. byte-level corruption appended to the WAL is CRC-detected and
      truncated on the next open, never silently loaded.

   dune exec bench/main.exe -- chaos kill [SEED] [WRITERS] [BATCHES] [ROUNDS] *)

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter
      (fun n -> rm_rf (Filename.concat path n))
      (try Sys.readdir path with Sys_error _ -> [||]);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

(* The op as the writer will resolve it after a torn connection. *)
type pending = {
  pd_writer : int;
  pd_op : op;
  pd_probe : string;  (** query deciding whether it committed *)
  pd_expect : bool;  (** probe answer "yes" <=> committed *)
}

let kill_storm ~seed ~writers ~batches ~rounds =
  Printf.printf
    "=== chaos kill: seed %d, %d writers x %d batches, %d kill rounds ===\n%!"
    seed writers batches rounds;
  let failures = ref [] in
  let fail fmt =
    Printf.ksprintf (fun m -> failures := m :: !failures) fmt
  in
  let root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "plkill-%d-%d" (Unix.getpid ()) seed)
  in
  rm_rf root;
  Unix.mkdir root 0o755;
  let data = Filename.concat root "data" in
  let port_file = Filename.concat root "port" in

  (* -- the serving child ------------------------------------------- *)
  let spawn_child () =
    (try Sys.remove port_file with Sys_error _ -> ());
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
      (try
         (* jitter the fsync so kills land mid-append with real odds *)
         ignore
           (Fault.configure_string
              (Printf.sprintf "seed=%d;wal_fsync:delay@0.3:0.002" seed)
             : (unit, string) result);
         let p = Pathlog.load mutation_base in
         let config =
           {
             Pathlog.Server.default_config with
             workers = 2;
             queue_capacity = 4 * writers;
             busy_retry_after_ms = 2;
             data_dir = Some data;
             snapshot_every = 8;
             (* stretch the replay so the parent reliably observes the
                BUSY-while-recovering window after each restart *)
             recovery_delay_s = 0.15;
           }
         in
         let srv =
           Pathlog.Server.create ~config ~program:p
             (Pathlog.Server.Tcp ("127.0.0.1", 0))
         in
         Pathlog.Server.install_signal_handlers srv;
         let port =
           match Pathlog.Server.address srv with
           | Pathlog.Server.Tcp (_, port) -> port
           | Pathlog.Server.Unix_path _ -> 0
         in
         let tmp = port_file ^ ".tmp" in
         let oc = open_out tmp in
         output_string oc (string_of_int port);
         close_out oc;
         Sys.rename tmp port_file;
         Pathlog.Server.serve srv
       with _ -> ());
      Unix._exit 0
    | pid -> pid
  in
  let wait_port () =
    let deadline = Unix.gettimeofday () +. 30. in
    let rec go () =
      if Unix.gettimeofday () > deadline then failwith "child never bound"
      else
        match open_in port_file with
        | exception Sys_error _ ->
          Thread.delay 0.005;
          go ()
        | ic ->
          let line = try input_line ic with End_of_file -> "" in
          close_in ic;
          (match int_of_string_opt line with
          | Some port when port > 0 -> port
          | _ ->
            Thread.delay 0.005;
            go ())
    in
    go ()
  in

  (* committed ops, per writer in commit order; disjoint namespaces make
     the cross-writer interleaving irrelevant to the final model *)
  let logs = Array.make writers [] in
  let log_lock = Mutex.create () in
  let committed_total = ref 0 in
  let commit k op =
    Mutex.lock log_lock;
    logs.(k) <- op :: logs.(k);
    incr committed_total;
    Mutex.unlock log_lock
  in
  let busy_observed = ref 0 and torn = ref 0 and resolved_in = ref 0 in
  let tally = Mutex.create () in

  (* block until the replay finishes: the BUSY shed clears and ordinary
     queries are answered again *)
  let wait_ready addr =
    let deadline = Unix.gettimeofday () +. 30. in
    let rec go () =
      if Unix.gettimeofday () > deadline then fail "server never became ready"
      else
        match Pathlog.Client.connect addr with
        | exception Unix.Unix_error _ ->
          Thread.delay 0.01;
          go ()
        | c ->
          let r = Pathlog.Client.request c "QUERY seed0[tc ->> {Y}]" in
          Pathlog.Client.close c;
          (match r with
          | Ok (Pathlog.Protocol.Ok _ | Pathlog.Protocol.Degraded _) -> ()
          | Ok _ | Error _ ->
            Thread.delay 0.01;
            go ())
    in
    go ()
  in

  (* resolve ops left torn by the previous kill: probe the recovered
     server; "yes"/"no" decides whether the op made it into the log *)
  let resolve_pending addr pending =
    List.iter
      (fun pd ->
        match Pathlog.Client.connect addr with
        | exception Unix.Unix_error _ -> fail "probe connect failed"
        | c ->
          Fun.protect
            ~finally:(fun () -> Pathlog.Client.close c)
            (fun () ->
              match Pathlog.Client.query c pd.pd_probe with
              | Ok [ "yes" ] ->
                if pd.pd_expect then begin
                  commit pd.pd_writer pd.pd_op;
                  incr resolved_in
                end
              | Ok [ "no" ] ->
                if not pd.pd_expect then begin
                  commit pd.pd_writer pd.pd_op;
                  incr resolved_in
                end
              | Ok _ -> fail "probe %S: unexpected payload" pd.pd_probe
              | Error e -> fail "probe %S failed: %s" pd.pd_probe e))
      pending
  in

  (* -- one storm round --------------------------------------------- *)
  (* Returns the ops torn at the kill. [kill_at = None] runs the round
     to completion (the fault-free verification round). *)
  let storm_round ~round ~kill_at pid addr =
    let pending = ref [] in
    let pending_lock = Mutex.create () in
    let server_dead = ref false in
    let drained = ref false in
    let writer_thread k =
      let rng = Random.State.make [| seed; round; k |] in
      let conn = ref (Some (Pathlog.Client.connect addr)) in
      let committed = ref [] in
      let obj i = Printf.sprintf "w%d_r%d_n%d" k round i in
      let mutate op probe expect =
        (* true = committed. A torn connection means the kill caught the
           op in flight; its fate is unknowable until the restart — any
           probe now races the dying server's still-running session (the
           mutation can commit to the WAL after the client's read fails).
           So the op is parked in [pending], resolved by a probe against
           the RECOVERED server (quiescent: prior writers joined, next
           round's not yet started), and the writer stops. *)
        let rec attempt tries c =
          let verb = if op.op_retract then "RETRACT" else "ASSERT" in
          match
            Pathlog.Client.request_with_retry ~max_attempts:8
              ~base_delay_s:0.002
              ~seed:((seed * 263) + (round * 31) + k)
              c (verb ^ " " ^ op.op_text)
          with
          | Ok (Pathlog.Protocol.Ok _) -> true
          | Ok (Pathlog.Protocol.Busy _) when tries < 20 ->
            Thread.delay 0.005;
            attempt (tries + 1) c
          | Ok _ -> false
          | Error (`Eof | `Malformed _) ->
            Mutex.lock tally;
            incr torn;
            Mutex.unlock tally;
            (try Pathlog.Client.close c with _ -> ());
            conn := None;
            Mutex.lock pending_lock;
            pending :=
              { pd_writer = k; pd_op = op; pd_probe = probe;
                pd_expect = expect }
              :: !pending;
            Mutex.unlock pending_lock;
            server_dead := true;
            raise Exit
        in
        match !conn with None -> false | Some c -> attempt 0 c
      in
      let next = ref 0 in
      (try
         for _ = 1 to batches do
           if !server_dead then raise Exit;
           let retractable = !committed in
           if retractable <> [] && Random.State.int rng 3 = 0 then begin
             let i = Random.State.int rng (List.length retractable) in
             let fact = List.nth retractable i in
             let op = { op_retract = true; op_text = fact ^ "." } in
             if mutate op fact false then begin
               committed := List.filteri (fun j _ -> j <> i) retractable;
               commit k op
             end
           end
           else begin
             let a, b =
               if Random.State.int rng 4 = 0 then
                 ("seed2", obj (Random.State.int rng 5))
               else begin
                 let i = !next in
                 incr next;
                 (obj (i mod 7), obj ((i + 1 + Random.State.int rng 3) mod 7))
               end
             in
             let fact = Printf.sprintf "%s[edge ->> {%s}]" a b in
             if not (List.mem fact !committed) then begin
               let op = { op_retract = false; op_text = fact ^ "." } in
               if mutate op fact true then begin
                 committed := fact :: !committed;
                 commit k op
               end
             end
           end
         done
       with Exit -> ());
      match !conn with
      | Some c -> Pathlog.Client.close c
      | None -> ()
    in
    let killer =
      match kill_at with
      | None -> None
      | Some target ->
        Some
          (Thread.create
             (fun () ->
               (* seed-deterministic instant: SIGKILL as soon as the
                  shared commit counter reaches the target (or the storm
                  drains first) *)
               let rec watch () =
                 let n =
                   Mutex.lock log_lock;
                   let n = !committed_total in
                   Mutex.unlock log_lock;
                   n
                 in
                 if n < target && not !server_dead && not !drained then begin
                   Thread.delay 0.002;
                   watch ()
                 end
               in
               watch ();
               Unix.kill pid Sys.sigkill)
             ())
    in
    let threads = List.init writers (fun k -> Thread.create writer_thread k) in
    List.iter Thread.join threads;
    drained := true;
    (match killer with Some th -> Thread.join th | None -> ());
    (match kill_at with
    | Some _ ->
      ignore (Unix.waitpid [] pid : int * Unix.process_status)
    | None -> ());
    !pending
  in

  (* -- drive the rounds -------------------------------------------- *)
  let committed_before_kills = ref 0 in
  let pending = ref [] in
  let final_pid = ref (-1) in
  let final_addr = ref None in
  for round = 1 to rounds + 1 do
    let pid = spawn_child () in
    let port = wait_port () in
    let addr = Pathlog.Server.Tcp ("127.0.0.1", port) in
    (* observe the recovery window: the first query after the restart
       must be shed with BUSY + retry-after while the replay runs *)
    (match Pathlog.Client.connect addr with
    | exception Unix.Unix_error _ -> fail "round %d: cannot connect" round
    | c ->
      (match Pathlog.Client.request c "QUERY seed0[tc ->> {Y}]" with
      | Ok (Pathlog.Protocol.Busy (retry_ms, _)) ->
        if retry_ms <= 0 then fail "BUSY without a retry-after hint";
        incr busy_observed
      | Ok _ -> ()
      | Error _ -> fail "round %d: probe request failed" round);
      Pathlog.Client.close c);
    wait_ready addr;
    resolve_pending addr !pending;
    pending := [];
    if round <= rounds then begin
      let target =
        !committed_before_kills + 4 + ((seed + (3 * round)) mod (2 * writers))
      in
      pending := storm_round ~round ~kill_at:(Some target) pid addr;
      committed_before_kills := !committed_total
    end
    else begin
      (* verification round: mutations after recovery, no kill *)
      ignore (storm_round ~round ~kill_at:None pid addr : pending list);
      final_pid := pid;
      final_addr := Some addr
    end
  done;

  (* -- verify: served model = batch-log replay --------------------- *)
  let replay = Pathlog.Live.attach (Pathlog.load mutation_base) in
  let replayed = ref 0 in
  Array.iter
    (fun ops ->
      List.iter
        (fun op ->
          incr replayed;
          try
            if op.op_retract then
              ignore
                (Pathlog.Live.retract_batch replay op.op_text
                  : Pathlog.Live.batch_stats)
            else
              ignore
                (Pathlog.Live.assert_batch replay op.op_text
                  : Pathlog.Live.batch_stats)
          with Pathlog.Live.Rejected m ->
            fail "replay rejected %S: %s" op.op_text m)
        (List.rev ops))
    logs;
  (match !final_addr with
  | None -> fail "no final server"
  | Some addr -> (
    match Pathlog.Client.connect addr with
    | exception Unix.Unix_error (e, _, _) ->
      fail "final server dead: %s" (Unix.error_message e)
    | c ->
      Fun.protect
        ~finally:(fun () -> Pathlog.Client.close c)
        (fun () ->
          List.iter
            (fun q ->
              let expected =
                List.sort compare
                  (expected_payload
                     (Pathlog.Live.program replay)
                     (Program.query_string (Pathlog.Live.program replay) q))
              in
              match Pathlog.Client.query c q with
              | Ok lines ->
                if List.sort compare lines <> expected then
                  fail "served %S differs from the batch-log replay" q
              | Error e -> fail "final query %S failed: %s" q e)
            [ "X[edge ->> {Y}]"; "X[tc ->> {Y}]"; "seed0[tc ->> {Y}]" ];
          match Pathlog.Client.stats c with
          | Ok lines ->
            let has prefix =
              List.exists
                (fun l ->
                  String.length l > String.length prefix
                  && String.sub l 0 (String.length prefix) = prefix)
                lines
            in
            if not (has "wal_appends_total") then
              fail "STATS misses the WAL counters";
            if not (has "last_recovery_ms") then
              fail "STATS misses last_recovery_ms"
          | Error e -> fail "final STATS failed: %s" e)));
  (* graceful stop: SIGTERM drains and closes the log *)
  if !final_pid > 0 then begin
    Unix.kill !final_pid Sys.sigterm;
    ignore (Unix.waitpid [] !final_pid : int * Unix.process_status)
  end;

  (* -- in-process recovery equals the replay too -------------------- *)
  let recover_live () =
    let d, r = Pathlog.Durable.open_dir data in
    Pathlog.Durable.close d;
    let src =
      match r.Pathlog.Durable.r_snapshot with
      | Some (_, _, src) -> src
      | None -> mutation_base
    in
    let p = Pathlog.Program.of_string src in
    ignore (Pathlog.Program.run p);
    let live = Pathlog.Live.attach p in
    List.iter
      (fun (rc : Pathlog.Durable.record) ->
        let apply =
          if rc.Pathlog.Durable.retract then Pathlog.Live.retract_batch
          else Pathlog.Live.assert_batch
        in
        ignore (apply live rc.Pathlog.Durable.text : Pathlog.Live.batch_stats))
      r.Pathlog.Durable.r_tail;
    (live, r)
  in
  let recovered, _ = recover_live () in
  let added, removed =
    Pathlog.Program.diff_models
      ~before:(Pathlog.Live.program replay)
      ~after:(Pathlog.Live.program recovered)
  in
  if added <> [] || removed <> [] then begin
    List.iter (fun f -> Printf.printf "  only recovered: %s\n" f) added;
    List.iter (fun f -> Printf.printf "  only replay:    %s\n" f) removed;
    fail "in-process recovery differs from the replay (+%d -%d)"
      (List.length added) (List.length removed)
  end;
  (match Pathlog.Store.check_invariants (Pathlog.Live.store recovered) with
  | [] -> ()
  | broken -> List.iter (fun m -> fail "recovered store: %s" m) broken);

  (* -- byte-level corruption: CRC-detected, truncated, never loaded - *)
  let wal = Pathlog.Durable.wal_path data in
  let clean_size = (Unix.stat wal).Unix.st_size in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 wal in
  output_string oc "\xde\xad\xbe\xefgarbage torn mid-frame";
  close_out oc;
  let recovered2, r2 = recover_live () in
  if r2.Pathlog.Durable.r_torn_bytes = 0 then
    fail "appended garbage was not detected as torn";
  if (Unix.stat wal).Unix.st_size <> clean_size then
    fail "torn tail was not truncated back to the valid boundary";
  let added2, removed2 =
    Pathlog.Program.diff_models
      ~before:(Pathlog.Live.program replay)
      ~after:(Pathlog.Live.program recovered2)
  in
  if added2 <> [] || removed2 <> [] then
    fail "corruption changed the recovered model (+%d -%d)"
      (List.length added2) (List.length removed2);

  Printf.printf
    "committed batches: %d replayed (%d resolved by post-kill probes); %d \
     torn connections; BUSY-while-recovering observed %d/%d restarts\n"
    !replayed !resolved_in !torn !busy_observed (rounds + 1);
  if !committed_total = 0 then fail "the storm committed nothing";
  if !busy_observed = 0 then
    fail "no restart was observed recovering (BUSY window missed)";
  rm_rf root;
  match !failures with
  | [] -> print_endline "chaos kill: ok"
  | fs ->
    List.iter (fun m -> Printf.printf "chaos FAILURE: %s\n" m) (List.rev fs);
    exit 1

let rec main args =
  match args with
  | "kill" :: rest ->
    let arg i default =
      match List.nth_opt rest i with
      | Some s -> int_of_string s
      | None -> default
    in
    kill_storm ~seed:(arg 0 1) ~writers:(arg 1 3) ~batches:(arg 2 12)
      ~rounds:(arg 3 2)
  | "mutation" :: rest ->
    let arg i default =
      match List.nth_opt rest i with
      | Some s -> int_of_string s
      | None -> default
    in
    mutation_storm ~seed:(arg 0 1) ~writers:(arg 1 4) ~batches:(arg 2 40)
  | _ -> query_storm args

and query_storm args =
  let arg i default =
    match List.nth_opt args i with
    | Some s -> int_of_string s
    | None -> default
  in
  let seed = arg 0 1 in
  let clients = arg 1 6 in
  let requests = arg 2 200 in
  Printf.printf
    "=== chaos: seed %d, %d clients x %d requests, company(%d) ===\n%!"
    seed clients requests size;

  (* Phase 0: the fault-free truth. *)
  let clean = Program.create (company_statements ()) in
  ignore (Program.run clean);
  let expected =
    Array.map
      (fun q ->
        List.sort compare (expected_payload clean (Program.query_string clean q)))
      queries
  in

  (* Phase 1: arm every injection point and rebuild the model under
     faults. Rates are high enough that every point fires many times over
     the run (see the counts report), low enough that progress holds. *)
  Fault.configure ~seed
    [
      (Fault.Store_write, Fault.Fail, 0.02);
      (Fault.Solver_step, Fault.Delay 0.0002, 0.01);
      (Fault.Wire_read, Fault.Fail, 0.01);
      (Fault.Wire_write, Fault.Short, 0.01);
      (Fault.Wire_write, Fault.Delay 0.001, 0.02);
      (Fault.Pool_dispatch, Fault.Fail, 0.05);
      (Fault.Pool_dispatch, Fault.Delay 0.001, 0.05);
    ];
  let failures = ref [] in
  let fail fmt =
    Printf.ksprintf (fun m -> failures := m :: !failures) fmt
  in
  let p = evaluate_under_faults () in
  if Program.degraded p <> None then
    fail "faulted evaluation ended degraded (no budget was set)";
  Array.iteri
    (fun i q ->
      let got =
        List.sort compare (expected_payload p (Program.query_string p q))
      in
      if got <> expected.(i) then
        fail "faulted model differs on %S" q)
    queries;

  (* Phase 2: the storm. Concurrent clients issue mixed requests against
     a server whose wire and dispatch fault points are live. Torn
     connections are expected — clients reconnect; BUSY is expected —
     clients back off; what is NOT tolerated is a wrong completed answer
     or a dead server. *)
  let config =
    {
      Pathlog.Server.default_config with
      workers = 3;
      queue_capacity = clients;
      busy_retry_after_ms = 2;
    }
  in
  let srv =
    Pathlog.Server.create ~config ~program:p
      (Pathlog.Server.Tcp ("127.0.0.1", 0))
  in
  let addr = Pathlog.Server.address srv in
  let ok = ref 0
  and busy = ref 0
  and errs = ref 0
  and torn = ref 0
  and mismatches = ref 0 in
  let tally = Mutex.create () in
  let bump r = Mutex.lock tally; incr r; Mutex.unlock tally in
  let nq = Array.length queries in
  let client_thread k =
    let conn = ref (Pathlog.Client.connect addr) in
    let reconnect () =
      Pathlog.Client.close !conn;
      bump torn;
      conn := Pathlog.Client.connect addr
    in
    for i = 0 to requests - 1 do
      let qi = (k + i) mod nq in
      let line =
        match i mod 17 with
        | 0 -> "PING"
        | 1 -> "STATS"
        | _ -> "QUERY " ^ queries.(qi)
      in
      let rec attempt tries =
        if tries > 8 then bump errs
        else
          match
            Pathlog.Client.request_with_retry ~max_attempts:4
              ~base_delay_s:0.002 ~seed:((seed * 131) + k) !conn line
          with
          | Ok (Pathlog.Protocol.Ok lines) ->
            bump ok;
            if
              String.length line > 6
              && String.sub line 0 6 = "QUERY "
              && List.sort compare lines <> expected.(qi)
            then bump mismatches
          | Ok Pathlog.Protocol.Pong -> bump ok
          | Ok (Pathlog.Protocol.Degraded _) ->
            (* this server's model is complete; DEGRADED would be a lie *)
            bump mismatches
          | Ok (Pathlog.Protocol.Busy _) -> bump busy
          | Ok (Pathlog.Protocol.Err _) -> bump errs
          | Error (`Eof | `Malformed _) ->
            (* injected wire fault tore the session; reconnect, retry *)
            (match reconnect () with
            | () -> attempt (tries + 1)
            | exception Unix.Unix_error _ -> bump errs)
      in
      attempt 0
    done;
    Pathlog.Client.close !conn
  in
  let threads = List.init clients (fun k -> Thread.create client_thread k) in
  List.iter Thread.join threads;

  (* Snapshot the injection counters before disarming clears them. *)
  let injected_total = Fault.injected_total () in
  let injected_counts = Fault.counts () in
  (* The server must still be alive and coherent: a fault-free probe on a
     fresh connection answers correctly. *)
  Fault.disable ();
  (match Pathlog.Client.connect addr with
  | c ->
    (match Pathlog.Client.query c queries.(0) with
    | Ok lines when List.sort compare lines = expected.(0) -> ()
    | Ok _ -> fail "post-storm probe answered incorrectly"
    | Error msg -> fail "post-storm probe failed: %s" msg);
    Pathlog.Client.close c
  | exception Unix.Unix_error (e, _, _) ->
    fail "server dead after the storm: %s" (Unix.error_message e));
  Pathlog.Server.request_stop srv;
  Pathlog.Server.shutdown srv;

  (* Phase 3: invariants and the final verdict. *)
  (match Pathlog.Store.check_invariants (Program.store p) with
  | [] -> ()
  | broken ->
    List.iter (fun m -> fail "store invariant violated: %s" m) broken);
  if !mismatches > 0 then
    fail "%d completed answers differed from the fault-free run"
      !mismatches;
  Printf.printf
    "requests: %d ok, %d busy, %d errors, %d torn connections, %d \
     mismatches\n"
    !ok !busy !errs !torn !mismatches;
  Printf.printf "injected faults: %d total\n" injected_total;
  List.iter
    (fun (pt, n) ->
      Printf.printf "  %-14s %d\n" (Fault.point_to_string pt) n)
    injected_counts;
  if injected_total = 0 then
    fail "the storm injected nothing — the harness is not testing faults";
  match !failures with
  | [] -> print_endline "chaos: ok"
  | fs ->
    List.iter (fun m -> Printf.printf "chaos FAILURE: %s\n" m) (List.rev fs);
    exit 1
