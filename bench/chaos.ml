(* Chaos harness: evaluate and serve a known workload with the fault
   registry armed at every injection point, and assert the three
   robustness invariants the fault layer promises:

   1. the server (and the in-process evaluator) never crashes — injected
      failures surface as per-request/per-connection errors only;
   2. store invariants hold after the storm (Store.check_invariants);
   3. completed, non-degraded answers equal the fault-free run — delays,
      transient write failures and torn connections must never change
      WHAT is computed, only whether a given attempt completes.

   Deterministic under its seed: the fault schedule is a pure function of
   (seed, point, per-point hit counter), so a failing seed replays.

   dune exec bench/main.exe -- chaos [SEED] [CLIENTS] [REQUESTS] *)

module Program = Pathlog.Program
module Fault = Pathlog.Fault

let size = 100

let queries =
  [|
    "X : employee[age -> A; city -> newYork]";
    "X : manager";
    "e1 : employee";
    "X : company.president[P]";
    "X : employee[city -> X.boss.city]";
  |]

let expected_payload p (answer : Program.answer) =
  match answer.columns with
  | [] -> [ (if answer.rows = [] then "no" else "yes") ]
  | columns ->
    let u = Program.universe p in
    String.concat "\t" columns
    :: List.map
         (fun row ->
           String.concat "\t"
             (List.map (Pathlog.Universe.to_string u) row))
         answer.rows

let company_statements () =
  Pathlog.Company.statements (Pathlog.Company.scaled size)

(* Build + evaluate under an armed registry. Solver_step delay faults and
   transient Store_write failures are absorbed inside the engine; a
   Store_write failure streak long enough to escape the write path's
   bounded retry surfaces as Fault.Injected — evaluation is monotone over
   an append-only store, so rerunning the fixpoint on the same program
   object simply continues from the partial model. *)
let evaluate_under_faults () =
  let p = Program.create (company_statements ()) in
  let rec go attempts =
    match Program.run p with
    | _stats -> p
    | exception Fault.Injected _ when attempts < 50 -> go (attempts + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Mutation storm: concurrent ASSERT/RETRACT writers plus subscribers
   under the armed fault registry.

   Invariants checked:
   1. the server survives and every writer either gets a definite reply
      or resolves a torn connection by probing for its own facts;
   2. replaying the committed batch log into a fresh Live instance yields
      a model bit-for-bit equal to the server's (writers own disjoint
      fact namespaces, so per-writer order fully determines the result);
   3. store invariants and the replay's support index are clean;
   4. a subscriber's baseline plus its DELTA stream reconstructs the
      final answer set of its standing query.

   dune exec bench/main.exe -- chaos mutation [SEED] [WRITERS] [BATCHES] *)

let mutation_base =
  {|
  seed0[edge ->> {seed1}]. seed1[edge ->> {seed2}].
  X[tc ->> {Y}] <- X[edge ->> {Y}].
  X[tc ->> {Y}] <- X[edge ->> {Z}] , Z[tc ->> {Y}].
  |}

type op = { op_retract : bool; op_text : string }

let mutation_storm ~seed ~writers ~batches =
  Printf.printf "=== chaos mutation: seed %d, %d writers x %d batches ===\n%!"
    seed writers batches;
  let failures = ref [] in
  let fail fmt =
    Printf.ksprintf (fun m -> failures := m :: !failures) fmt
  in
  let p = Pathlog.load mutation_base in
  let config =
    {
      Pathlog.Server.default_config with
      workers = 3;
      queue_capacity = 2 * writers;
      busy_retry_after_ms = 2;
    }
  in
  let srv =
    Pathlog.Server.create ~config ~program:p
      (Pathlog.Server.Tcp ("127.0.0.1", 0))
  in
  let addr = Pathlog.Server.address srv in

  (* Subscribe before the faults go live: DELTA pushes bypass the wire
     fault point, so the stream stays intact through the storm and the
     reconciliation below is exact. *)
  let sub_query = "seed0[tc ->> {Y}]" in
  let sub_conn = Pathlog.Client.connect addr in
  let sub_rows = ref [] in
  let sub_deltas = ref 0 in
  (match Pathlog.Client.subscribe sub_conn sub_query with
  | Ok s -> sub_rows := s.Pathlog.Client.baseline
  | Error e -> fail "SUBSCRIBE failed before the storm: %s" e);

  Fault.configure ~seed
    [
      (Fault.Store_write, Fault.Fail, 0.01);
      (Fault.Solver_step, Fault.Delay 0.0002, 0.01);
      (Fault.Wire_read, Fault.Fail, 0.005);
      (Fault.Wire_write, Fault.Short, 0.005);
      (Fault.Wire_write, Fault.Delay 0.001, 0.01);
    ];

  (* Writer k mutates only objects named wK_*: the namespaces are
     disjoint, so any interleaving of the per-writer logs replays to the
     same model. Ops: grow a private chain, sometimes link it under
     seed2 (so the subscription sees it), sometimes retract a committed
     edge. A torn connection mid-mutation is resolved by probing for the
     batch's distinguishing fact on a fresh connection. *)
  let logs = Array.make writers [] in
  let torn = ref 0 and busy_shed = ref 0 and unresolved = ref 0 in
  let tally = Mutex.create () in
  let bump r = Mutex.lock tally; incr r; Mutex.unlock tally in
  let writer_thread k =
    let rng = Random.State.make [| seed; k |] in
    let conn = ref (Pathlog.Client.connect addr) in
    let committed = ref [] in
    let mutate op probe_fact expect_present =
      (* -> true when the op definitely committed *)
      let rec attempt tries =
        if tries > 6 then begin
          bump unresolved;
          false
        end
        else
          let verb = if op.op_retract then "RETRACT" else "ASSERT" in
          match
            Pathlog.Client.request_with_retry ~max_attempts:6
              ~base_delay_s:0.002
              ~seed:((seed * 257) + k)
              !conn (verb ^ " " ^ op.op_text)
          with
          | Ok (Pathlog.Protocol.Ok _) -> true
          | Ok (Pathlog.Protocol.Busy _) ->
            (* still shedding after the client's own retries *)
            bump busy_shed;
            attempt (tries + 1)
          | Ok _ -> false
          | Error (`Eof | `Malformed _) -> (
            (* torn mid-mutation: did it commit? probe on a fresh
               connection for the batch's distinguishing fact *)
            bump torn;
            Pathlog.Client.close !conn;
            match Pathlog.Client.connect addr with
            | exception Unix.Unix_error _ ->
              bump unresolved;
              false
            | c -> (
              conn := c;
              match Pathlog.Client.query c probe_fact with
              | Ok [ "yes" ] -> expect_present
              | Ok [ "no" ] -> not expect_present || attempt (tries + 1)
              | Ok _ | Error _ ->
                bump unresolved;
                false))
      in
      attempt 0
    in
    let next = ref 0 in
    for _ = 1 to batches do
      let retractable = !committed in
      if retractable <> [] && Random.State.int rng 3 = 0 then begin
        (* retract a previously committed edge *)
        let i = Random.State.int rng (List.length retractable) in
        let fact = List.nth retractable i in
        let op = { op_retract = true; op_text = fact ^ "." } in
        if mutate op fact false then begin
          committed := List.filteri (fun j _ -> j <> i) retractable;
          logs.(k) <- op :: logs.(k)
        end
      end
      else begin
        let a, b =
          if Random.State.int rng 4 = 0 then
            (* link the private chain under the seeds *)
            ("seed2", Printf.sprintf "w%d_n%d" k (Random.State.int rng 5))
          else begin
            let i = !next in
            incr next;
            (Printf.sprintf "w%d_n%d" k (i mod 7),
             Printf.sprintf "w%d_n%d" k ((i + 1 + Random.State.int rng 3) mod 7))
          end
        in
        let fact = Printf.sprintf "%s[edge ->> {%s}]" a b in
        if not (List.mem fact !committed) then begin
          let op = { op_retract = false; op_text = fact ^ "." } in
          if mutate op fact true then begin
            committed := fact :: !committed;
            logs.(k) <- op :: logs.(k)
          end
        end
      end
    done;
    Pathlog.Client.close !conn
  in
  let threads = List.init writers (fun k -> Thread.create writer_thread k) in
  (* drain the subscriber concurrently: apply DELTA frames in order *)
  let storm_done = ref false in
  let sub_thread =
    Thread.create
      (fun () ->
        let rec drain () =
          match Pathlog.Client.next_delta ~timeout_s:0.1 sub_conn with
          | Some d ->
            incr sub_deltas;
            let removed = d.Pathlog.Protocol.vanished in
            sub_rows :=
              List.sort compare
                (d.Pathlog.Protocol.appeared
                @ List.filter (fun r -> not (List.mem r removed)) !sub_rows);
            drain ()
          | None -> if not !storm_done then drain ()
        in
        drain ())
      ()
  in
  List.iter Thread.join threads;
  let injected_total = Fault.injected_total () in
  Fault.disable ();
  (* let the last DELTA frames flush, then stop the drain *)
  Thread.delay 0.3;
  storm_done := true;
  Thread.join sub_thread;

  (* Reconciliation 1: the subscriber's maintained answer set equals a
     fresh subscription's baseline. *)
  (match Pathlog.Client.connect addr with
  | exception Unix.Unix_error (e, _, _) ->
    fail "server dead after the storm: %s" (Unix.error_message e)
  | c ->
    (match Pathlog.Client.subscribe c sub_query with
    | Ok s ->
      if List.sort compare s.Pathlog.Client.baseline
         <> List.sort compare !sub_rows
      then
        fail "subscriber drift: baseline+deltas %d rows, server %d rows"
          (List.length !sub_rows)
          (List.length s.Pathlog.Client.baseline)
    | Error e -> fail "post-storm SUBSCRIBE failed: %s" e);
    Pathlog.Client.close c);
  Pathlog.Server.request_stop srv;
  Pathlog.Server.shutdown srv;

  (* Reconciliation 2: replay the committed batch log into a fresh Live
     instance; the models must agree exactly, and both the server store's
     invariants and the replay's support index must be clean. *)
  let replay = Pathlog.Live.attach (Pathlog.load mutation_base) in
  let replayed = ref 0 in
  Array.iter
    (fun ops ->
      List.iter
        (fun op ->
          incr replayed;
          try
            if op.op_retract then
              ignore
                (Pathlog.Live.retract_batch replay op.op_text
                  : Pathlog.Live.batch_stats)
            else
              ignore
                (Pathlog.Live.assert_batch replay op.op_text
                  : Pathlog.Live.batch_stats)
          with Pathlog.Live.Rejected m ->
            fail "replay rejected %S: %s" op.op_text m)
        (List.rev ops))
    logs;
  let added, removed =
    Pathlog.Program.diff_models
      ~before:(Pathlog.Live.program replay)
      ~after:p
  in
  if added <> [] || removed <> [] then
    fail "server model differs from batch-log replay (+%d -%d)"
      (List.length added) (List.length removed);
  (match Pathlog.Store.check_invariants (Pathlog.Program.store p) with
  | [] -> ()
  | broken ->
    List.iter (fun m -> fail "server store invariant: %s" m) broken);
  (match Pathlog.Live.check_support replay with
  | [] -> ()
  | broken -> List.iter (fun m -> fail "replay support index: %s" m) broken);

  Printf.printf
    "committed batches: %d replayed; %d torn connections, %d busy sheds, \
     %d unresolved; %d DELTA frames\n"
    !replayed !torn !busy_shed !unresolved !sub_deltas;
  Printf.printf "injected faults: %d total\n" injected_total;
  Pathlog.Client.close sub_conn;
  if injected_total = 0 then
    fail "the storm injected nothing — the harness is not testing faults";
  match !failures with
  | [] -> print_endline "chaos mutation: ok"
  | fs ->
    List.iter (fun m -> Printf.printf "chaos FAILURE: %s\n" m) (List.rev fs);
    exit 1

let rec main args =
  match args with
  | "mutation" :: rest ->
    let arg i default =
      match List.nth_opt rest i with
      | Some s -> int_of_string s
      | None -> default
    in
    mutation_storm ~seed:(arg 0 1) ~writers:(arg 1 4) ~batches:(arg 2 40)
  | _ -> query_storm args

and query_storm args =
  let arg i default =
    match List.nth_opt args i with
    | Some s -> int_of_string s
    | None -> default
  in
  let seed = arg 0 1 in
  let clients = arg 1 6 in
  let requests = arg 2 200 in
  Printf.printf
    "=== chaos: seed %d, %d clients x %d requests, company(%d) ===\n%!"
    seed clients requests size;

  (* Phase 0: the fault-free truth. *)
  let clean = Program.create (company_statements ()) in
  ignore (Program.run clean);
  let expected =
    Array.map
      (fun q ->
        List.sort compare (expected_payload clean (Program.query_string clean q)))
      queries
  in

  (* Phase 1: arm every injection point and rebuild the model under
     faults. Rates are high enough that every point fires many times over
     the run (see the counts report), low enough that progress holds. *)
  Fault.configure ~seed
    [
      (Fault.Store_write, Fault.Fail, 0.02);
      (Fault.Solver_step, Fault.Delay 0.0002, 0.01);
      (Fault.Wire_read, Fault.Fail, 0.01);
      (Fault.Wire_write, Fault.Short, 0.01);
      (Fault.Wire_write, Fault.Delay 0.001, 0.02);
      (Fault.Pool_dispatch, Fault.Fail, 0.05);
      (Fault.Pool_dispatch, Fault.Delay 0.001, 0.05);
    ];
  let failures = ref [] in
  let fail fmt =
    Printf.ksprintf (fun m -> failures := m :: !failures) fmt
  in
  let p = evaluate_under_faults () in
  if Program.degraded p <> None then
    fail "faulted evaluation ended degraded (no budget was set)";
  Array.iteri
    (fun i q ->
      let got =
        List.sort compare (expected_payload p (Program.query_string p q))
      in
      if got <> expected.(i) then
        fail "faulted model differs on %S" q)
    queries;

  (* Phase 2: the storm. Concurrent clients issue mixed requests against
     a server whose wire and dispatch fault points are live. Torn
     connections are expected — clients reconnect; BUSY is expected —
     clients back off; what is NOT tolerated is a wrong completed answer
     or a dead server. *)
  let config =
    {
      Pathlog.Server.default_config with
      workers = 3;
      queue_capacity = clients;
      busy_retry_after_ms = 2;
    }
  in
  let srv =
    Pathlog.Server.create ~config ~program:p
      (Pathlog.Server.Tcp ("127.0.0.1", 0))
  in
  let addr = Pathlog.Server.address srv in
  let ok = ref 0
  and busy = ref 0
  and errs = ref 0
  and torn = ref 0
  and mismatches = ref 0 in
  let tally = Mutex.create () in
  let bump r = Mutex.lock tally; incr r; Mutex.unlock tally in
  let nq = Array.length queries in
  let client_thread k =
    let conn = ref (Pathlog.Client.connect addr) in
    let reconnect () =
      Pathlog.Client.close !conn;
      bump torn;
      conn := Pathlog.Client.connect addr
    in
    for i = 0 to requests - 1 do
      let qi = (k + i) mod nq in
      let line =
        match i mod 17 with
        | 0 -> "PING"
        | 1 -> "STATS"
        | _ -> "QUERY " ^ queries.(qi)
      in
      let rec attempt tries =
        if tries > 8 then bump errs
        else
          match
            Pathlog.Client.request_with_retry ~max_attempts:4
              ~base_delay_s:0.002 ~seed:((seed * 131) + k) !conn line
          with
          | Ok (Pathlog.Protocol.Ok lines) ->
            bump ok;
            if
              String.length line > 6
              && String.sub line 0 6 = "QUERY "
              && List.sort compare lines <> expected.(qi)
            then bump mismatches
          | Ok Pathlog.Protocol.Pong -> bump ok
          | Ok (Pathlog.Protocol.Degraded _) ->
            (* this server's model is complete; DEGRADED would be a lie *)
            bump mismatches
          | Ok (Pathlog.Protocol.Busy _) -> bump busy
          | Ok (Pathlog.Protocol.Err _) -> bump errs
          | Error (`Eof | `Malformed _) ->
            (* injected wire fault tore the session; reconnect, retry *)
            (match reconnect () with
            | () -> attempt (tries + 1)
            | exception Unix.Unix_error _ -> bump errs)
      in
      attempt 0
    done;
    Pathlog.Client.close !conn
  in
  let threads = List.init clients (fun k -> Thread.create client_thread k) in
  List.iter Thread.join threads;

  (* Snapshot the injection counters before disarming clears them. *)
  let injected_total = Fault.injected_total () in
  let injected_counts = Fault.counts () in
  (* The server must still be alive and coherent: a fault-free probe on a
     fresh connection answers correctly. *)
  Fault.disable ();
  (match Pathlog.Client.connect addr with
  | c ->
    (match Pathlog.Client.query c queries.(0) with
    | Ok lines when List.sort compare lines = expected.(0) -> ()
    | Ok _ -> fail "post-storm probe answered incorrectly"
    | Error msg -> fail "post-storm probe failed: %s" msg);
    Pathlog.Client.close c
  | exception Unix.Unix_error (e, _, _) ->
    fail "server dead after the storm: %s" (Unix.error_message e));
  Pathlog.Server.request_stop srv;
  Pathlog.Server.shutdown srv;

  (* Phase 3: invariants and the final verdict. *)
  (match Pathlog.Store.check_invariants (Program.store p) with
  | [] -> ()
  | broken ->
    List.iter (fun m -> fail "store invariant violated: %s" m) broken);
  if !mismatches > 0 then
    fail "%d completed answers differed from the fault-free run"
      !mismatches;
  Printf.printf
    "requests: %d ok, %d busy, %d errors, %d torn connections, %d \
     mismatches\n"
    !ok !busy !errs !torn !mismatches;
  Printf.printf "injected faults: %d total\n" injected_total;
  List.iter
    (fun (pt, n) ->
      Printf.printf "  %-14s %d\n" (Fault.point_to_string pt) n)
    injected_counts;
  if injected_total = 0 then
    fail "the storm injected nothing — the harness is not testing faults";
  match !failures with
  | [] -> print_endline "chaos: ok"
  | fs ->
    List.iter (fun m -> Printf.printf "chaos FAILURE: %s\n" m) (List.rev fs);
    exit 1
