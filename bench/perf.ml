(* Reproducible perf harness: `dune exec bench/main.exe -- perf [OPTS]`.

   Runs a fixed suite — transitive closure over chain / layered-DAG /
   random-forest shapes, a fixpoint that derives isa edges, the company
   query workload, a bound-receiver set-method query, incremental
   hierarchy-closure growth, and server throughput — and writes a JSON
   report with wall time, ops/s where meaningful, and the deterministic
   fixpoint counters (rule_evaluations, firings, rounds) so every future
   PR can report speedups against a committed baseline.

   Options:
     --quick           fewer timing repetitions (same deterministic sizes,
                       so the fixpoint counters match the full run)
     --out FILE        write the JSON report (default BENCH.json)
     --jobs N          evaluate the general fixpoint suites on N domains
                       (default 1; the fixpoint_par_* scaling suites
                       always run at 1, 2 and 4)
     --baseline FILE   read a previous report and embed per-suite
                       baseline wall times + speedup factors
     --check FILE      compare this run's rule_evaluations against the
                       committed report; exit non-zero on a >20%%
                       regression (used by CI)
     --only PREFIX     run only the suites whose name starts with PREFIX
                       (e.g. --only regex for the automaton suites) *)

module Program = Pathlog.Program
module Store = Pathlog.Store
module Ir = Pathlog.Ir
module Solve = Pathlog.Solve

type suite = {
  name : string;
  wall_s : float;
  ops_per_s : float option;
  rule_evaluations : int option;
  firings : int option;
  rounds : int option;
  speedup_vs_1j : float option;
      (* scaling suites: this run's speedup over the jobs=1 run *)
  speedup_vs_full : float option;
      (* demand suites: full-materialisation wall over demand wall *)
  detail : string;
}

(* ------------------------------------------------------------------ *)
(* Timing helpers                                                      *)

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Best-of-n wall time; result and counters from the last run (the runs
   are deterministic, so any run's counters are the counters). *)
let best_of n f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to n do
    let r, w = wall f in
    if w < !best then best := w;
    result := Some r
  done;
  (Option.get !result, !best)

(* Repeat [f] enough times to fill ~[target] seconds (calibrated from one
   run, capped), return ops/s and total wall. *)
let measure_ops ~target f =
  ignore (f ());
  let _, once = wall f in
  let reps = max 1 (min 5000 (int_of_float (target /. max 1e-6 once))) in
  let (), w =
    wall (fun () ->
        for _ = 1 to reps do
          ignore (f ())
        done)
  in
  (float_of_int reps /. w, w)

(* ------------------------------------------------------------------ *)
(* Suites                                                              *)

let fixpoint_suite name stmts ~jobs ~reps ~detail =
  let config = { Pathlog.Fixpoint.default_config with jobs } in
  let run () =
    let p = Program.create ~config stmts in
    Program.run p
  in
  let stats, w = best_of reps run in
  {
    name;
    wall_s = w;
    ops_per_s = None;
    rule_evaluations = Some stats.Pathlog.Fixpoint.rule_evaluations;
    firings = Some stats.firings;
    rounds = Some stats.rounds;
    speedup_vs_1j = None;
    speedup_vs_full = None;
    detail;
  }

let tc_chain ~jobs ~reps =
  fixpoint_suite "tc_chain_256"
    (Pathlog.Genealogy.statements (Pathlog.Genealogy.Chain 256)
    @ Pathlog.Genealogy.desc_rules)
    ~jobs ~reps ~detail:"desc closure of chain(256), semi-naive"

let tc_forest ~jobs ~reps =
  fixpoint_suite "tc_forest_256"
    (Pathlog.Genealogy.statements
       (Pathlog.Genealogy.Random_forest
          { people = 256; max_kids = 3; seed = 11 })
    @ Pathlog.Genealogy.desc_rules)
    ~jobs ~reps ~detail:"desc closure of random forest(256), semi-naive"

let tc_dag_stmts =
  lazy
    (Pathlog.Graph.layered_dag ~layers:7 ~width:14 ~fanout:3 ~seed:7
    @ Pathlog.Parser.program
        {|
        X[reach ->> {Y}] <- X[to ->> {Y}].
        X[reach ->> {Y}] <- X[to ->> {Z}], Z[reach ->> {Y}].
        |})

let tc_dag ~jobs ~reps =
  fixpoint_suite "tc_dag_7x14" (Lazy.force tc_dag_stmts) ~jobs ~reps
    ~detail:"reach closure of layered dag(7x14, fanout 3), semi-naive"

(* A fixpoint that derives one isa edge per round along a scalar chain:
   every insertion invalidates (or, incrementally, updates) the hierarchy
   closure caches while the seeded isa delta is being consumed. *)
let isa_derive_stmts =
  lazy
    (let n = 400 in
     let b = Buffer.create (n * 24) in
     for i = 0 to n - 1 do
       Buffer.add_string b (Printf.sprintf "o%d[next -> o%d]. " i (i + 1))
     done;
     Buffer.add_string b (Printf.sprintf "o%d : reach. " n);
     (* m0..m63 : hub is a static membership set enumerated once per
        round via the class-bound isa access path *)
     for j = 0 to 63 do
       Buffer.add_string b (Printf.sprintf "m%d : hub. " j)
     done;
     Buffer.add_string b "X : reach <- X[next -> Y], Y : reach. ";
     Buffer.add_string b "X[sees ->> {Y}] <- X : hub, Y : reach. ";
     Pathlog.Parser.program (Buffer.contents b))

let isa_derive ~jobs ~reps =
  fixpoint_suite "isa_derive_400"
    (Lazy.force isa_derive_stmts)
    ~jobs ~reps
    ~detail:
      "chain(400) reachability derived as isa edges + hub(64) join; one \
       new isa edge per round"

(* Scaling workload for the domain-parallel fixpoint: 16 disjoint chain
   partitions, each with its own edge method and its own pair of closure
   rules, all deriving into one shared [reach] set method. Everything is
   one stratum, so every round offers ~48 independent (rule, seed) tasks
   for the worker pool to claim. *)
let par_stmts =
  lazy
    (let parts = 16 and n = 48 in
     let b = Buffer.create (parts * n * 32) in
     for r = 0 to parts - 1 do
       for i = 0 to n - 1 do
         Buffer.add_string b
           (Printf.sprintf "p%dn%d[to%d ->> {p%dn%d}]. " r i r r (i + 1))
       done;
       Buffer.add_string b
         (Printf.sprintf "X[reach ->> {Y}] <- X[to%d ->> {Y}]. " r);
       Buffer.add_string b
         (Printf.sprintf "X[reach ->> {Y}] <- X[to%d ->> {Z}], Z[reach ->> \
                          {Y}]. " r)
     done;
     Pathlog.Parser.program (Buffer.contents b))

let fixpoint_par ~jobs ~reps ~base =
  let config = { Pathlog.Fixpoint.default_config with jobs } in
  let stmts = Lazy.force par_stmts in
  let run () =
    let p = Program.create ~config stmts in
    Program.run p
  in
  let stats, w = best_of reps run in
  {
    name = Printf.sprintf "fixpoint_par_%dj" jobs;
    wall_s = w;
    ops_per_s = None;
    rule_evaluations = Some stats.Pathlog.Fixpoint.rule_evaluations;
    firings = Some stats.firings;
    rounds = Some stats.rounds;
    speedup_vs_1j =
      (match base with
      | Some b when jobs > 1 -> Some (b /. max 1e-9 w)
      | _ -> None);
    speedup_vs_full = None;
    detail =
      Printf.sprintf
        "16-partition chain(48) closure into a shared reach method, jobs=%d"
        jobs;
  }

let company_program n =
  let p =
    Program.create (Pathlog.Company.statements (Pathlog.Company.scaled n))
  in
  ignore (Program.run p);
  p

let company_query_texts =
  [
    "X : employee..vehicles : automobile.color[Z]";
    "X : employee..vehicles : automobile[cylinders -> 4].color[Z]";
    "X : manager..vehicles[color -> red].producedBy[city -> city1; \
     president -> X]";
    "X : manager";
    "X : employee[city -> X.boss.city]";
    "X : company.president[P]";
    "X : employee[age -> A; city -> newYork]";
  ]

let company_queries ~target =
  let p = company_program 400 in
  let store = Program.store p in
  let qs =
    List.map
      (fun src ->
        Pathlog.Flatten.literals store (Pathlog.Parser.literals src))
      company_query_texts
  in
  let run () = List.iter (fun q -> ignore (Solve.named_solutions store q)) qs in
  let ops, w = measure_ops ~target run in
  {
    name = "company_queries_400";
    wall_s = w;
    ops_per_s = Some ops;
    rule_evaluations = None;
    firings = None;
    rounds = None;
    speedup_vs_1j = None;
    speedup_vs_full = None;
    detail =
      Printf.sprintf "%d-query workload over company(400); ops = workload \
                      evaluations" (List.length qs);
  }

(* Bound receiver, unbound argument and result: without a receiver-keyed
   index this scans the whole method bucket (every receiver). *)
let recv_set_query ~target =
  let receivers = 200 and per = 25 in
  let st = Store.create () in
  let m = Store.name st "edge" in
  for i = 0 to receivers - 1 do
    let r = Store.name st (Printf.sprintf "r%d" i) in
    for j = 0 to per - 1 do
      ignore
        (Store.add_set st ~meth:m ~recv:r
           ~args:[ Store.int st j ]
           ~res:(Store.int st ((i * per) + j)))
    done
  done;
  let r0 = Store.name st "r0" in
  let q =
    {
      Ir.atoms =
        [
          Ir.A_member
            { meth = Ir.Const m; recv = Ir.Const r0; args = [ Ir.V 0 ];
              res = Ir.V 1 };
        ];
      nvars = 2;
      named = [ ("A", 0); ("X", 1) ];
    }
  in
  let expect = per in
  let run () =
    let rows = Solve.named_solutions st q in
    if List.length rows <> expect then failwith "recv_set_query: wrong rows"
  in
  let ops, w = measure_ops ~target run in
  {
    name = "recv_set_query_200x25";
    wall_s = w;
    ops_per_s = Some ops;
    rule_evaluations = None;
    firings = None;
    rounds = None;
    speedup_vs_1j = None;
    speedup_vs_full = None;
    detail =
      "r0[edge@(A) ->> {X}] over 200 receivers x 25 one-ary tuples; ops = \
       query evaluations";
  }

(* Interleave isa insertions with whole-hierarchy membership queries: with
   wholesale cache invalidation each round recomputes the root closure from
   scratch (O(edges x objects)); incremental maintenance keeps it live. *)
let isa_closure_growth ~reps =
  let n = 400 and width = 8 in
  let run () =
    let st = Store.create () in
    let root = Store.name st "root" in
    let classes =
      Array.init width (fun j -> Store.name st (Printf.sprintf "c%d" j))
    in
    Array.iter (fun c -> ignore (Store.add_isa st c root)) classes;
    let total = ref 0 in
    for i = 0 to n - 1 do
      let o = Store.name st (Printf.sprintf "o%d" i) in
      ignore (Store.add_isa st o classes.(i mod width));
      total := !total + Pathlog.Obj_id.Set.cardinal (Store.members st root)
    done;
    !total
  in
  let expected = (width * n) + (n * (n + 1) / 2) in
  let total, w = best_of reps run in
  if total <> expected then failwith "isa_closure_growth: wrong member count";
  {
    name = Printf.sprintf "isa_closure_growth_%d" n;
    wall_s = w;
    ops_per_s = Some (float_of_int n /. w);
    rule_evaluations = None;
    firings = None;
    rounds = None;
    speedup_vs_1j = None;
    speedup_vs_full = None;
    detail =
      "400 isa inserts into an 8-class hierarchy, members(root) after each; \
       ops = insert+query pairs";
  }

(* Live-mutation write path: 200 ASSERT batches of 25 chain edges each,
   every batch a disjoint 26-node chain so the semi-naive maintenance
   rounds only touch that batch's delta (25 edges + 325 reach facts). *)
let assert_batch ~reps =
  let batches = 200 and per = 25 in
  let base =
    "seed[edge ->> {seed}]. X[reach ->> {Y}] <- X[edge ->> {Y}]. X[reach ->> \
     {Y}] <- X[edge ->> {Z}], Z[reach ->> {Y}]."
  in
  let batch_text j =
    let b = Buffer.create (per * 32) in
    for i = 0 to per - 1 do
      Buffer.add_string b (Printf.sprintf "c%d_%d[edge ->> {c%d_%d}]. " j i j (i + 1))
    done;
    Buffer.contents b
  in
  let texts = Array.init batches batch_text in
  (* per batch: [per] edge facts + tc over a (per+1)-node chain *)
  let expected = batches * ((per * (per + 1) / 2) + per) in
  let run () =
    let live = Pathlog.Live.attach (Pathlog.load base) in
    let total = ref 0 in
    Array.iter
      (fun text ->
        let stats = Pathlog.Live.assert_batch live text in
        total := !total + List.length stats.Pathlog.Live.added)
      texts;
    !total
  in
  let total, w = best_of reps run in
  if total <> expected then
    failwith
      (Printf.sprintf "assert_batch: %d net facts added, expected %d" total
         expected);
  {
    name = Printf.sprintf "assert_batch_%dx%d" batches per;
    wall_s = w;
    ops_per_s = Some (float_of_int batches /. w);
    rule_evaluations = None;
    firings = None;
    rounds = None;
    speedup_vs_1j = None;
    speedup_vs_full = None;
    detail =
      "200 ASSERT batches of 25 chain edges into a live reach closure; ops = \
       batches";
  }

(* DRed stress: transitive closure of a 400-edge chain with n4k -> n4k+2
   shortcut rungs. Retracting n200 -> n201 over-deletes every tc fact
   whose recorded derivation crossed that edge, then the re-derivation
   pass restores the (still reachable, via the rung) downstream closure;
   re-asserting restores the model, so retract+assert pairs repeat
   cleanly under the timer. *)
let retract_rederive ~target =
  let n = 400 in
  let b = Buffer.create (n * 40) in
  for i = 0 to n - 1 do
    Buffer.add_string b (Printf.sprintf "n%d[edge ->> {n%d}]. " i (i + 1))
  done;
  for k = 0 to (n / 4) - 1 do
    Buffer.add_string b (Printf.sprintf "n%d[edge ->> {n%d}]. " (4 * k) ((4 * k) + 2))
  done;
  Buffer.add_string b "X[tc ->> {Y}] <- X[edge ->> {Y}]. ";
  Buffer.add_string b "X[tc ->> {Y}] <- X[edge ->> {Z}], Z[tc ->> {Y}].";
  let live = Pathlog.Live.attach (Pathlog.load (Buffer.contents b)) in
  let victim = "n200[edge ->> {n201}]." in
  (* Validate the workload shape once, outside the timer: the retract
     must take the over-delete / re-derive path and leave the rest of
     the chain reachable through the rung. *)
  let stats = Pathlog.Live.retract_batch live victim in
  if stats.Pathlog.Live.strategy <> Pathlog.Live.Dred then
    failwith "retract_rederive: expected a DRed retract";
  let holds q = Pathlog.holds (Pathlog.Live.program live) q in
  if holds "n0[tc ->> {n201}]" then
    failwith "retract_rederive: n201 still reachable after retract";
  if not (holds (Printf.sprintf "n0[tc ->> {n%d}]" n)) then
    failwith "retract_rederive: chain tail not re-derived via the rung";
  ignore (Pathlog.Live.assert_batch live victim);
  let run () =
    ignore (Pathlog.Live.retract_batch live victim);
    ignore (Pathlog.Live.assert_batch live victim)
  in
  let ops, w = measure_ops ~target run in
  {
    name = Printf.sprintf "retract_reDerive_tc_%d" n;
    wall_s = w;
    ops_per_s = Some ops;
    rule_evaluations = None;
    firings = None;
    rounds = None;
    speedup_vs_1j = None;
    speedup_vs_full = None;
    detail =
      "retract+assert of a mid-chain edge in tc(chain 400 + rungs); each \
       retract over-deletes and re-derives the downstream closure; ops = \
       retract+assert pairs";
  }

let server_queries =
  [|
    "X : employee..vehicles : automobile.color[Z]";
    "X : manager";
    "X : employee[city -> X.boss.city]";
    "e1 : employee";
  |]

let server_suite ~name ~config ~requests ~detail =
  let p = company_program 100 in
  let srv =
    Pathlog.Server.create ~config ~program:p
      (Pathlog.Server.Tcp ("127.0.0.1", 0))
  in
  let addr = Pathlog.Server.address srv in
  let clients = 4 in
  let ok = ref 0 in
  let tally = Mutex.create () in
  let nq = Array.length server_queries in
  let client_thread k =
    let c = Pathlog.Client.connect addr in
    Fun.protect
      ~finally:(fun () -> Pathlog.Client.close c)
      (fun () ->
        for i = 0 to requests - 1 do
          let rec attempt () =
            match
              Pathlog.Client.request c
                ("QUERY " ^ server_queries.((k + i) mod nq))
            with
            | Ok (Pathlog.Protocol.Ok _ | Pathlog.Protocol.Degraded _) ->
              Mutex.lock tally;
              incr ok;
              Mutex.unlock tally
            | Ok (Pathlog.Protocol.Busy (retry_ms, _)) ->
              Thread.delay (Float.max 0.001 (float_of_int retry_ms /. 1000.));
              attempt ()
            | Ok (Pathlog.Protocol.Err _ | Pathlog.Protocol.Pong) | Error _ ->
              ()
          in
          attempt ()
        done)
  in
  let (), w =
    wall (fun () ->
        let threads =
          List.init clients (fun k -> Thread.create client_thread k)
        in
        List.iter Thread.join threads)
  in
  Pathlog.Server.request_stop srv;
  Pathlog.Server.shutdown srv;
  let total = clients * requests in
  if !ok <> total then
    failwith (Printf.sprintf "%s: %d ok of %d" name !ok total);
  {
    name;
    wall_s = w;
    ops_per_s = Some (float_of_int total /. w);
    rule_evaluations = None;
    firings = None;
    rounds = None;
    speedup_vs_1j = None;
    speedup_vs_full = None;
    detail = Printf.sprintf detail requests;
  }

let server_throughput ~requests =
  server_suite ~name:"server_throughput_4w"
    ~config:
      { Pathlog.Server.default_config with workers = 4; queue_capacity = 32 }
    ~requests
    ~detail:
      "4 clients x %d requests against the in-process server, company(100)"

(* The lock-free read path at scale: domain-backed workers evaluate query
   requests on pinned snapshots concurrently. cache_capacity = 1 keeps the
   result cache nearly useless (4 distinct queries evict each other), so
   throughput measures parallel evaluation, not cache hits. *)
let server_par_read ~requests =
  server_suite ~name:"server_par_read"
    ~config:
      {
        Pathlog.Server.default_config with
        workers = 4;
        queue_capacity = 32;
        pool_domains = true;
        cache_capacity = 1;
      }
    ~requests
    ~detail:
      "4 clients x %d requests, 4 domain workers on snapshot reads, \
       company(100)"

(* ------------------------------------------------------------------ *)
(* Demand-driven evaluation (PR 7): a bound-receiver query answered via
   the magic-sets transform against fresh programs, timed against full
   materialisation of the same program. The transform must not fall
   back — a fallback would silently time the full run twice. *)

let demand_suite name stmts query ~reps ~detail =
  let demand () =
    let p = Program.create stmts in
    snd (Program.query_demand_string p query)
  in
  let full () =
    let p = Program.create stmts in
    let s = Program.run p in
    ignore (Program.query_string p query);
    s
  in
  let report, dw = best_of reps demand in
  let _, fw = best_of reps full in
  (match report.Pathlog.Program.d_fallback with
  | Some fb ->
    failwith
      (name ^ ": unexpected demand fallback: "
      ^ Pathlog.Demand.fallback_to_string fb)
  | None -> ());
  {
    name;
    wall_s = dw;
    ops_per_s = None;
    rule_evaluations =
      Some report.Pathlog.Program.d_stats.Pathlog.Fixpoint.rule_evaluations;
    firings = Some report.Pathlog.Program.d_stats.Pathlog.Fixpoint.firings;
    rounds = Some report.Pathlog.Program.d_stats.Pathlog.Fixpoint.rounds;
    speedup_vs_1j = None;
    speedup_vs_full = Some (fw /. max 1e-9 dw);
    detail;
  }

(* 100 disjoint boss chains of 100 nodes each under a recursive [up]
   closure: full materialisation derives all 100 chain closures (~505k
   tuples), the demanded query needs exactly one. *)
let boss_chain_edges =
  lazy
    (let chains = 100 and n = 100 in
     let b = Buffer.create (chains * n * 24) in
     for c = 0 to chains - 1 do
       for i = 0 to n - 1 do
         Buffer.add_string b
           (Printf.sprintf "c%dn%d[boss -> c%dn%d]. " c i c (i + 1))
       done
     done;
     Pathlog.Parser.program (Buffer.contents b))

let magic_chain_stmts =
  lazy
    (Lazy.force boss_chain_edges
    @ Pathlog.Parser.program
        "X[up ->> {Y}] <- X[boss -> Y]. \
         X[up ->> {Y}] <- X[boss -> Z], Z[up ->> {Y}].")

let magic_bound_tc ~reps =
  demand_suite "magic_bound_tc_10k"
    (Lazy.force magic_chain_stmts)
    "c0n0[up ->> {X}]" ~reps
    ~detail:
      "bound-receiver up-closure point query, 100 disjoint chains x 100 \
       nodes; counters are the demanded run's"

(* company(400) plus a quadratic same-city join and a recursive
   colleague-reachability closure; the point query demands one
   employee's reach chain and drops the join entirely. *)
let magic_company_stmts =
  lazy
    (Pathlog.Company.statements (Pathlog.Company.scaled 400)
    @ Pathlog.Parser.program
        "X[sameCity ->> {Y}] <- X[city -> C], Y[city -> C]. \
         X[colleague ->> {Y}] <- X[boss -> B], Y[boss -> B]. \
         X[reach ->> {Y}] <- X[colleague ->> {Y}]. \
         X[reach ->> {Y}] <- X[colleague ->> {Z}], Z[reach ->> {Y}].")

let magic_company_point ~reps =
  demand_suite "magic_company_point_400"
    (Lazy.force magic_company_stmts)
    "e1[reach ->> {Y}]" ~reps
    ~detail:
      "bound-receiver colleague-reach point query over company(400) with \
       a quadratic same-city join dropped by the transform"

(* ------------------------------------------------------------------ *)
(* Regular path expressions (PR 9): the automaton-product join against
   the recursive closure it replaces, over the same 100-chains x
   100-nodes boss store as the magic suites (10k objects). The regex
   program holds only the edge facts — the product join walks outward
   from the query's bound endpoint — while the recursive program must
   materialise the whole up-closure (~505k tuples) before the point
   query can read it. Both sides time the full pipeline (parse-free
   statement load, fixpoint, query); answers are checked equal.

   [rule_evaluations] for these suites is the number of (object, state)
   pairs the product BFS popped for the query — the join's deterministic
   work counter, so `--check` catches product-join regressions the same
   way it catches fixpoint ones. *)

let regex_suite name ~edges ~regex_query ~tc_stmts ~tc_query ~reps ~detail =
  let pairs = ref 0 in
  let named p rows = List.map (Program.row_to_string p) rows in
  let regex () =
    let p = Program.create edges in
    ignore (Program.run p);
    let s0 = Atomic.get Solve.product_states_expanded in
    let rows = (Program.query_string p regex_query).Program.rows in
    pairs := Atomic.get Solve.product_states_expanded - s0;
    named p rows
  in
  let tc () =
    let p = Program.create tc_stmts in
    ignore (Program.run p);
    named p (Program.query_string p tc_query).Program.rows
  in
  let rrows, rw = best_of reps regex in
  let trows, tw = best_of reps tc in
  let sorted = List.sort compare in
  if sorted rrows <> sorted trows then
    failwith
      (Printf.sprintf "%s: regex answered %d rows, recursive closure %d"
         name (List.length rrows) (List.length trows));
  {
    name;
    wall_s = rw;
    ops_per_s = None;
    rule_evaluations = Some !pairs;
    firings = None;
    rounds = None;
    speedup_vs_1j = None;
    speedup_vs_full = Some (tw /. max 1e-9 rw);
    detail =
      Printf.sprintf
        "%s; rule_evaluations counts product (object, state) pairs popped; \
         recursive-closure side %.4f s"
        detail tw;
  }

let regex_bound_tc ~reps =
  regex_suite "regex_bound_tc_10k"
    ~edges:(Lazy.force boss_chain_edges)
    ~regex_query:"c0n0.boss+[Y]"
    ~tc_stmts:(Lazy.force magic_chain_stmts)
    ~tc_query:"c0n0[up ->> {Y}]" ~reps
    ~detail:
      "bound-receiver boss+ walked by the automaton product vs the \
       recursive up-closure, 100 disjoint chains x 100 nodes"

let regex_unbound_tc ~reps =
  regex_suite "regex_unbound_tc_10k"
    ~edges:(Lazy.force boss_chain_edges)
    ~regex_query:"X.boss+[Y]"
    ~tc_stmts:(Lazy.force magic_chain_stmts)
    ~tc_query:"X[up ->> {Y}]" ~reps
    ~detail:
      "both endpoints free: the product join enumerates the universe \
       (~505k pairs), same asymptotics as materialising the closure"

(* A second edge relation inside each chain (i -> i+2 mentor skips) so
   the alternation's language stays within the chain. *)
let mentor_chain_edges =
  lazy
    (let chains = 100 and n = 100 in
     let b = Buffer.create (chains * n * 24) in
     for c = 0 to chains - 1 do
       for i = 0 to n - 2 do
         Buffer.add_string b
           (Printf.sprintf "c%dn%d[mentor -> c%dn%d]. " c i c (i + 2))
       done
     done;
     Pathlog.Parser.program (Buffer.contents b))

let regex_alt_stmts =
  lazy (Lazy.force boss_chain_edges @ Lazy.force mentor_chain_edges)

let regex_alt ~reps =
  regex_suite "regex_alt_bound_10k"
    ~edges:(Lazy.force regex_alt_stmts)
    ~regex_query:"c0n0.(boss|mentor)+[Y]"
    ~tc_stmts:
      (Lazy.force regex_alt_stmts
      @ Pathlog.Parser.program
          "X[e ->> {Y}] <- X[boss -> Y]. \
           X[e ->> {Y}] <- X[mentor -> Y]. \
           X[reach ->> {Y}] <- X[e ->> {Y}]. \
           X[reach ->> {Y}] <- X[e ->> {Z}], Z[reach ->> {Y}].")
    ~tc_query:"c0n0[reach ->> {Y}]" ~reps
    ~detail:
      "bound-receiver (boss|mentor)+ alternation vs a recursive closure \
       over the union edge relation, boss chains + mentor skip edges"

(* ------------------------------------------------------------------ *)
(* The deterministic generator workloads as concrete program text:
   `bench emit` lists them, `bench emit NAME` prints one. CI feeds each
   through `pathlog check` so a generator can never silently start
   emitting programs the static analyzer would reject. *)

let generator_workloads () =
  [
    ( "tc_chain_256",
      Pathlog.Genealogy.statements (Pathlog.Genealogy.Chain 256)
      @ Pathlog.Genealogy.desc_rules );
    ( "tc_forest_256",
      Pathlog.Genealogy.statements
        (Pathlog.Genealogy.Random_forest
           { people = 256; max_kids = 3; seed = 11 })
      @ Pathlog.Genealogy.desc_rules );
    ("tc_dag_7x14", Lazy.force tc_dag_stmts);
    ("isa_derive_400", Lazy.force isa_derive_stmts);
    ("fixpoint_par", Lazy.force par_stmts);
    ("company_100", Pathlog.Company.statements (Pathlog.Company.scaled 100));
    ("magic_bound_tc", Lazy.force magic_chain_stmts);
    ("magic_company_400", Lazy.force magic_company_stmts);
    ( "regex_bound_tc",
      Lazy.force regex_alt_stmts
      @ Pathlog.Parser.program "?- c0n0.(boss|mentor)+[Y]." );
  ]

let emit_programs args =
  let ws = generator_workloads () in
  match args with
  | [] -> List.iter (fun (n, _) -> print_endline n) ws
  | name :: _ -> (
    match List.assoc_opt name ws with
    | Some stmts -> Format.printf "%a@." Pathlog.Pretty.pp_program stmts
    | None ->
      Printf.eprintf "bench emit: unknown workload %s\n" name;
      exit 2)

(* ------------------------------------------------------------------ *)
(* Durable recovery cost: build a logged history on disk once — a live
   reach closure fed ASSERT batches of disjoint chain edges through the
   Durable commit hook, with a snapshot cut halfway so recovery stitches
   snapshot + WAL suffix — then time exactly what `serve --data` does at
   startup: open the data dir (CRC scan of the log), rebuild the
   snapshot source, replay the suffix through Live. Recovery is
   read-only on a clean directory, so the timed run repeats under
   best-of. ops = WAL records replayed. *)
let recovery_time ~reps =
  let batches = 120 and per = 6 in
  let base =
    "X[reach ->> {Y}] <- X[edge ->> {Y}]. X[reach ->> {Y}] <- X[edge ->> \
     {Z}], Z[reach ->> {Y}]."
  in
  let batch_text j =
    let b = Buffer.create (per * 32) in
    for i = 0 to per - 1 do
      Buffer.add_string b
        (Printf.sprintf "r%d_%d[edge ->> {r%d_%d}]. " j i j (i + 1))
    done;
    Buffer.contents b
  in
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    | _ -> Unix.unlink path
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "plperf-recovery-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      (* history on disk, once, outside the timer *)
      let builder = Pathlog.Live.attach (Pathlog.load base) in
      let d, _ = Pathlog.Durable.open_dir dir in
      Pathlog.Live.set_commit_hook builder
        (Some
           (fun ~retract ~epoch ~text ->
             ignore (Pathlog.Durable.append d ~retract ~epoch text : int)));
      for j = 0 to batches - 1 do
        ignore
          (Pathlog.Live.assert_batch builder (batch_text j)
            : Pathlog.Live.batch_stats);
        if j = (batches / 2) - 1 then
          ignore
            (Pathlog.Durable.snapshot_now d
               ~epoch:(Pathlog.Store.epoch (Pathlog.Live.store builder))
               ~source:(Pathlog.Live.dump_source builder)
              : bool)
      done;
      Pathlog.Durable.close d;
      let run () =
        let d, r = Pathlog.Durable.open_dir dir in
        Pathlog.Durable.close d;
        let src =
          match r.Pathlog.Durable.r_snapshot with
          | Some (_, _, src) -> src
          | None -> failwith "recovery_time: snapshot not recovered"
        in
        let live = Pathlog.Live.attach (Pathlog.load src) in
        List.iter
          (fun (rec_ : Pathlog.Durable.record) ->
            let apply =
              if rec_.Pathlog.Durable.retract then Pathlog.Live.retract_batch
              else Pathlog.Live.assert_batch
            in
            ignore (apply live rec_.Pathlog.Durable.text : Pathlog.Live.batch_stats))
          r.Pathlog.Durable.r_tail;
        (List.length r.Pathlog.Durable.r_tail, live)
      in
      let (replayed, recovered), w = best_of reps run in
      if replayed <> batches / 2 then
        failwith
          (Printf.sprintf "recovery_time: replayed %d WAL records, expected %d"
             replayed (batches / 2));
      (match
         Pathlog.Program.diff_models
           ~before:(Pathlog.Live.program builder)
           ~after:(Pathlog.Live.program recovered)
       with
      | [], [] -> ()
      | _ -> failwith "recovery_time: recovered model differs from builder");
      {
        name = Printf.sprintf "wal_recovery_%dx%d" batches per;
        wall_s = w;
        ops_per_s = Some (float_of_int replayed /. w);
        rule_evaluations = None;
        firings = None;
        rounds = None;
        speedup_vs_1j = None;
        speedup_vs_full = None;
        detail =
          "open data dir + rebuild mid-history snapshot + replay 60-record \
           WAL suffix through the live closure; ops = records replayed";
      })

(* ------------------------------------------------------------------ *)
(* Estimator accuracy: the cardinality abstract interpreter's predicted
   fixpoint size (summed relation bounds evaluated at the final universe
   size) vs the measured insertion count, over the deterministic
   fixpoint workloads. A factor >= 1 is the soundness invariant (also
   property-tested); closer to 1 is a tighter planner/admission
   estimate. Wall time covers analysis + evaluation of all workloads. *)
let estimator_accuracy () =
  let workloads =
    [
      ( "tc_chain_256",
        Pathlog.Genealogy.statements (Pathlog.Genealogy.Chain 256)
        @ Pathlog.Genealogy.desc_rules );
      ( "tc_dag_7x14",
        Pathlog.Graph.layered_dag ~layers:7 ~width:14 ~fanout:3 ~seed:7
        @ Pathlog.Parser.program
            "X[reach ->> {Y}] <- X[to ->> {Y}]. \
             X[reach ->> {Y}] <- X[to ->> {Z}], Z[reach ->> {Y}]." );
      ( "company_100",
        Pathlog.Company.statements (Pathlog.Company.scaled 100) );
      ("fixpoint_par", Lazy.force par_stmts);
    ]
  in
  let sat_add a b = if a > max_int - b then max_int else a + b in
  let measure (name, stmts) =
    let p = Program.create stmts in
    let t = Pathlog.Absint.analyze (Program.store p) (Program.rules p) in
    let stats = Program.run p in
    let n = max 1 (Pathlog.Universe.cardinality (Program.universe p)) in
    let predicted =
      List.fold_left
        (fun acc (_, c) -> sat_add acc (Pathlog.Absint.eval_card ~n c))
        0
        (Pathlog.Absint.rel_cards t)
    in
    let actual = max 1 stats.Pathlog.Fixpoint.insertions in
    (name, float_of_int predicted /. float_of_int actual)
  in
  let factors, w = wall (fun () -> List.map measure workloads) in
  {
    name = "estimator_accuracy";
    wall_s = w;
    ops_per_s = None;
    rule_evaluations = None;
    firings = None;
    rounds = None;
    speedup_vs_1j = None;
    speedup_vs_full = None;
    detail =
      "predicted/actual fixpoint size (>= 1 is sound): "
      ^ String.concat ", "
          (List.map
             (fun (n, f) -> Printf.sprintf "%s %.1fx" n f)
             factors);
  }

(* ------------------------------------------------------------------ *)
(* Minimal JSON (writer + reader for our own reports)                  *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (string_of_bool x)
  | Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string b (Printf.sprintf "%.0f" f)
    else Buffer.add_string b (Printf.sprintf "%.6g" f)
  | Str s ->
    Buffer.add_char b '"';
    String.iter
      (function
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"'
  | Arr xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string b ", ";
        emit b x)
      xs;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ", ";
        emit b (Str k);
        Buffer.add_string b ": ";
        emit b v)
      fields;
    Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 4096 in
  emit b j;
  Buffer.contents b

exception Parse of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    skip_ws ();
    if peek () = Some c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal"
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        (if !pos >= n then fail "bad escape");
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'u' ->
          (* our own writer only escapes control chars; decode as '?' *)
          pos := !pos + 4;
          Buffer.add_char b '?'
        | _ -> fail "bad escape");
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let number () =
    let start = !pos in
    let is_num c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e'
      || c = 'E'
    in
    while !pos < n && is_num s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    Num (float_of_string (String.sub s start (!pos - start)))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          let k = (skip_ws (); string_lit ()) in
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or }"
        in
        fields []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elems acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elems []
      end
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
    | None -> fail "unexpected end"
  in
  let v = value () in
  skip_ws ();
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let as_num = function Some (Num f) -> Some f | _ -> None
let as_str = function Some (Str s) -> Some s | _ -> None

(* Per-suite (wall_s, rule_evaluations) from a previous report. *)
let load_report file =
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let j = parse_json text in
  match member "suites" j with
  | Some (Arr suites) ->
    List.filter_map
      (fun s ->
        match as_str (member "name" s) with
        | Some name ->
          Some
            ( name,
              ( as_num (member "wall_s" s),
                as_num (member "rule_evaluations" s) ) )
        | None -> None)
      suites
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Report                                                              *)

let suite_json ~baseline (s : suite) =
  let base = List.assoc_opt s.name baseline in
  let opt name v f = match v with Some x -> [ (name, f x) ] | None -> [] in
  Obj
    ([ ("name", Str s.name); ("wall_s", Num s.wall_s) ]
    @ opt "ops_per_s" s.ops_per_s (fun x -> Num x)
    @ opt "rule_evaluations" s.rule_evaluations (fun x -> Num (float_of_int x))
    @ opt "firings" s.firings (fun x -> Num (float_of_int x))
    @ opt "rounds" s.rounds (fun x -> Num (float_of_int x))
    @ opt "speedup_vs_1j" s.speedup_vs_1j (fun x -> Num x)
    @ opt "speedup_vs_full" s.speedup_vs_full (fun x -> Num x)
    @ (match base with
      | Some (Some bw, _) ->
        [
          ("baseline_wall_s", Num bw);
          ("speedup", Num (bw /. max 1e-9 s.wall_s));
        ]
      | _ -> [])
    @ [ ("detail", Str s.detail) ])

(* Returns the regressed suites as (name, now, baseline) so the caller
   can say exactly which suite regressed and by how much. *)
let check ~committed suites =
  let failures = ref [] in
  List.iter
    (fun (s : suite) ->
      match (s.rule_evaluations, List.assoc_opt s.name committed) with
      | Some now, Some (_, Some baseline) ->
        let baseline = int_of_float baseline in
        let limit =
          baseline + (baseline / 5)
          (* >20% regression fails *)
        in
        if now > limit then begin
          failures := (s.name, now, baseline) :: !failures;
          Printf.printf
            "CHECK FAIL %-24s rule_evaluations %d > %d (baseline %d +20%%)\n"
            s.name now limit baseline
        end
        else
          Printf.printf "check ok   %-24s rule_evaluations %d (baseline %d)\n"
            s.name now baseline
      | _ -> ())
    suites;
  List.rev !failures

let main args =
  let quick = List.mem "--quick" args in
  let rec opt key = function
    | k :: v :: _ when k = key -> Some v
    | _ :: rest -> opt key rest
    | [] -> None
  in
  let out = Option.value ~default:"BENCH.json" (opt "--out" args) in
  let baseline_file = opt "--baseline" args in
  let check_file = opt "--check" args in
  let jobs =
    match opt "--jobs" args with
    | None -> 1
    | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> n
      | Some _ | None ->
        prerr_endline "bench perf: --jobs must be an integer >= 1";
        exit 2)
  in
  let reps = if quick then 1 else 3 in
  let target = if quick then 0.2 else 1.0 in
  let requests = if quick then 100 else 400 in
  Printf.printf "perf harness (%s mode)\n%!" (if quick then "quick" else "full");
  let only = opt "--only" args in
  let par_base = ref None in
  let all =
    [
      ("tc_chain_256", fun () -> tc_chain ~jobs ~reps);
      ("tc_dag_7x14", fun () -> tc_dag ~jobs ~reps);
      ("tc_forest_256", fun () -> tc_forest ~jobs ~reps);
      ("isa_derive_400", fun () -> isa_derive ~jobs ~reps);
      ("company_queries_400", fun () -> company_queries ~target);
      ("recv_set_query", fun () -> recv_set_query ~target);
      ("isa_closure_growth", fun () -> isa_closure_growth ~reps);
      ("assert_batch", fun () -> assert_batch ~reps);
      ("retract_rederive", fun () -> retract_rederive ~target);
      ("server_throughput_4w", fun () -> server_throughput ~requests);
      ( "fixpoint_par_1j",
        fun () ->
          let s = fixpoint_par ~jobs:1 ~reps ~base:None in
          par_base := Some s.wall_s;
          s );
      ("fixpoint_par_2j", fun () -> fixpoint_par ~jobs:2 ~reps ~base:!par_base);
      ("fixpoint_par_4j", fun () -> fixpoint_par ~jobs:4 ~reps ~base:!par_base);
      ("server_par_read", fun () -> server_par_read ~requests);
      ("magic_bound_tc_10k", fun () -> magic_bound_tc ~reps);
      ("magic_company_point_400", fun () -> magic_company_point ~reps);
      ("regex_bound_tc_10k", fun () -> regex_bound_tc ~reps);
      ("regex_unbound_tc_10k", fun () -> regex_unbound_tc ~reps);
      ("regex_alt_bound_10k", fun () -> regex_alt ~reps);
      ("wal_recovery", fun () -> recovery_time ~reps);
      ("estimator_accuracy", fun () -> estimator_accuracy ());
    ]
  in
  let selected =
    match only with
    | None -> all
    | Some prefix -> (
      match
        List.filter
          (fun (name, _) -> String.starts_with ~prefix name)
          all
      with
      | [] ->
        Printf.eprintf "bench perf: --only %s matches no suite\n" prefix;
        exit 2
      | some -> some)
  in
  let suites =
    List.map
      (fun ((_ : string), (mk : unit -> suite)) ->
        let s = mk () in
        Printf.printf "%-26s %8.4f s%s%s\n%!" s.name s.wall_s
          (match s.ops_per_s with
          | Some o -> Printf.sprintf "  %10.0f ops/s" o
          | None -> "")
          (match s.rule_evaluations with
          | Some r -> Printf.sprintf "  rule_evals %d" r
          | None -> "");
        s)
      selected
  in
  let baseline =
    match baseline_file with Some f -> load_report f | None -> []
  in
  let report =
    Obj
      [
        ( "meta",
          Obj
            [
              ("pr", Num 10.);
              ("mode", Str (if quick then "quick" else "full"));
              ("jobs", Num (float_of_int jobs));
              ( "cores",
                Num (float_of_int (Domain.recommended_domain_count ())) );
              ("generated_by", Str "bench perf");
            ] );
        ("suites", Arr (List.map (suite_json ~baseline) suites));
      ]
  in
  let oc = open_out out in
  output_string oc (to_string report);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" out;
  match check_file with
  | None -> ()
  | Some f -> (
    let committed = load_report f in
    match check ~committed suites with
    | [] -> print_endline "perf check: ok"
    | regressed ->
      Printf.printf "perf check: FAILED — %d suite(s) regressed vs %s:\n"
        (List.length regressed) f;
      List.iter
        (fun (name, now, baseline) ->
          Printf.printf
            "  %s: rule_evaluations %d vs baseline %d (+%.0f%%)\n" name now
            baseline
            (100. *. ((float_of_int now /. float_of_int baseline) -. 1.)))
        regressed;
      exit 1)
